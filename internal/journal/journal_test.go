package journal

import (
	"context"
	"math"
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/dispatch"
	"repro/internal/fault"
	_ "repro/internal/online" // registers ReplanDER
	"repro/internal/power"
	"repro/internal/task"
)

func testModel() power.Model { return power.Unit(3, 0.05) }

func openStore(t *testing.T, opts Options) *Store {
	t.Helper()
	st, err := Open(t.TempDir(), opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// driveSession runs a deterministic journaled workload: nbatch arrival
// batches of two tasks each, synchronous re-plans, optional finish.
func driveSession(t *testing.T, w *Writer, cp int, nbatch int, finish bool) *dispatch.Session {
	t.Helper()
	s, err := dispatch.New(dispatch.Config{
		Cores:           2,
		Model:           testModel(),
		SkipRatio:       true,
		Journal:         w,
		CheckpointEvery: cp,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ctx := context.Background()
	for i := 0; i < nbatch; i++ {
		at := float64(i)
		batch := task.Set{
			{ID: 0, Release: at, Work: 0.4, Deadline: at + 2.5},
			{ID: 1, Release: at + 0.1, Work: 0.6, Deadline: at + 3.5},
		}
		if _, _, err := s.Arrive(ctx, at, batch); err != nil {
			t.Fatalf("Arrive(%d): %v", i, err)
		}
	}
	if finish {
		if _, err := s.Finish(ctx); err != nil {
			t.Fatalf("Finish: %v", err)
		}
	}
	return s
}

func restoreAndFinish(t *testing.T, snap *dispatch.Snapshot) *dispatch.FinalReport {
	t.Helper()
	ctx := context.Background()
	s, err := dispatch.Restore(ctx, snap, dispatch.Config{SkipRatio: true})
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	defer s.Close()
	f, err := s.Finish(ctx)
	if err != nil {
		t.Fatalf("Finish: %v", err)
	}
	return f
}

func TestRoundTripFinished(t *testing.T) {
	st := openStore(t, Options{Fsync: FsyncAlways})
	w, err := st.Writer("s1")
	if err != nil {
		t.Fatalf("Writer: %v", err)
	}
	s := driveSession(t, w, 0, 6, true)
	defer s.Close()
	stats := s.Stats()
	if err := w.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	r := st.Replay("s1")
	if r.Err != nil {
		t.Fatalf("Replay: %v", r.Err)
	}
	if !r.Finished || r.FinishReason != "finished" {
		t.Fatalf("finished=%v reason=%q, want finished", r.Finished, r.FinishReason)
	}
	if r.Snapshot == nil {
		t.Fatal("nil snapshot")
	}
	if r.Snapshot.Commits != stats.Commits || r.Snapshot.Replans != stats.Replans {
		t.Fatalf("counters diverged: replayed commits=%d replans=%d, live %d/%d",
			r.Snapshot.Commits, r.Snapshot.Replans, stats.Commits, stats.Replans)
	}
	if math.Abs(r.Snapshot.Realized-stats.RealizedEnergy) > 1e-9 {
		t.Fatalf("realized energy diverged: %g vs %g", r.Snapshot.Realized, stats.RealizedEnergy)
	}
	if len(r.Snapshot.Committed) != len(s.Committed()) {
		t.Fatalf("committed length diverged: %d vs %d", len(r.Snapshot.Committed), len(s.Committed()))
	}
}

func TestRecoveryMidRun(t *testing.T) {
	st := openStore(t, Options{Fsync: FsyncNever})
	w, err := st.Writer("s1")
	if err != nil {
		t.Fatalf("Writer: %v", err)
	}
	s := driveSession(t, w, -1, 5, false)
	live := s.Committed()
	stats := s.Stats()
	// "Crash": no Finish, no Close ordering niceties.
	s.Close()
	w.Close()

	r := st.Replay("s1")
	if r.Err != nil {
		t.Fatalf("Replay: %v", r.Err)
	}
	if r.Finished {
		t.Fatal("unfinished session replayed as finished")
	}
	if len(r.Snapshot.Committed) != len(live) {
		t.Fatalf("committed prefix diverged: %d vs %d segments", len(r.Snapshot.Committed), len(live))
	}
	for i, seg := range live {
		if r.Snapshot.Committed[i] != seg {
			t.Fatalf("segment %d diverged: %+v vs %+v", i, r.Snapshot.Committed[i], seg)
		}
	}
	f := restoreAndFinish(t, r.Snapshot)
	if len(f.Violations) != 0 {
		t.Fatalf("restored session finished with violations: %v", f.Violations)
	}
	if f.Completed+f.Shed != stats.Tasks {
		t.Fatalf("recovered run lost tasks: completed %d + shed %d of %d", f.Completed, f.Shed, stats.Tasks)
	}
}

func TestRotationAndCompaction(t *testing.T) {
	t.Run("rotation", func(t *testing.T) {
		st := openStore(t, Options{Fsync: FsyncNever, SegmentBytes: 512})
		w, err := st.Writer("s1")
		if err != nil {
			t.Fatal(err)
		}
		s := driveSession(t, w, -1, 8, false) // no auto-checkpoints: segments accumulate
		defer s.Close()
		w.Close()
		dir, _ := st.SessionDir("s1")
		segs, _ := listSegments(dir)
		if len(segs) < 2 {
			t.Fatalf("expected rotation to produce >= 2 segments, have %d", len(segs))
		}
		r := st.Replay("s1")
		if r.Err != nil {
			t.Fatalf("Replay across segments: %v", r.Err)
		}
		if got := len(r.Snapshot.Tasks); got != 16 {
			t.Fatalf("replayed %d tasks, want 16", got)
		}
	})
	t.Run("compaction", func(t *testing.T) {
		st := openStore(t, Options{Fsync: FsyncNever, SegmentBytes: 512})
		w, err := st.Writer("s1")
		if err != nil {
			t.Fatal(err)
		}
		s := driveSession(t, w, 4, 8, false) // checkpoint every 4 records
		defer s.Close()
		w.Close()
		dir, _ := st.SessionDir("s1")
		segs, _ := listSegments(dir)
		if len(segs) == 0 || segs[0].index == 1 {
			t.Fatalf("compaction never deleted the oldest segment (have %d segments from %v)",
				len(segs), segs[0].index)
		}
		r := st.Replay("s1")
		if r.Err != nil {
			t.Fatalf("Replay after compaction: %v", r.Err)
		}
		if got := len(r.Snapshot.Tasks); got != 16 {
			t.Fatalf("replayed %d tasks, want 16", got)
		}
	})
}

func TestFsyncPolicies(t *testing.T) {
	for _, pol := range []Policy{FsyncAlways, FsyncInterval, FsyncNever} {
		t.Run(pol.String(), func(t *testing.T) {
			st := openStore(t, Options{Fsync: pol, FsyncInterval: 5 * time.Millisecond})
			w, err := st.Writer("s1")
			if err != nil {
				t.Fatal(err)
			}
			s := driveSession(t, w, 0, 3, true)
			defer s.Close()
			if pol == FsyncInterval {
				time.Sleep(25 * time.Millisecond) // let the background sync tick
			}
			w.Close()
			r := st.Replay("s1")
			if r.Err != nil || !r.Finished {
				t.Fatalf("policy %s: err=%v finished=%v", pol, r.Err, r.Finished)
			}
		})
	}
}

func TestParsePolicy(t *testing.T) {
	cases := []struct {
		in   string
		want Policy
		ok   bool
	}{
		{"always", FsyncAlways, true},
		{"Interval", FsyncInterval, true},
		{"never", FsyncNever, true},
		{"", FsyncInterval, true},
		{"sometimes", 0, false},
	}
	for _, c := range cases {
		got, err := ParsePolicy(c.in)
		if c.ok != (err == nil) || (c.ok && got != c.want) {
			t.Fatalf("ParsePolicy(%q) = %v, %v", c.in, got, err)
		}
	}
}

// TestCrashAtEveryRecordBoundary replays every record-aligned prefix of
// a real session log: each must fold without error into a state that
// restores and finishes with zero validator findings.
func TestCrashAtEveryRecordBoundary(t *testing.T) {
	st := openStore(t, Options{Fsync: FsyncNever, SegmentBytes: 1 << 30})
	w, err := st.Writer("s1")
	if err != nil {
		t.Fatal(err)
	}
	s := driveSession(t, w, -1, 5, true)
	defer s.Close()
	w.Close()
	dir, _ := st.SessionDir("s1")
	segs, _ := listSegments(dir)
	if len(segs) != 1 {
		t.Fatalf("want a single segment, have %d", len(segs))
	}
	buf, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	var bounds []int
	if _, tail, _ := scanFrames(buf, func(p []byte) error { return nil }); tail != tailClean {
		t.Fatalf("reference log not clean: %v", tail)
	}
	for off := 0; off < len(buf); {
		n := int(uint32(buf[off]) | uint32(buf[off+1])<<8 | uint32(buf[off+2])<<16 | uint32(buf[off+3])<<24)
		off += frameHeader + n
		bounds = append(bounds, off)
	}
	for i, b := range bounds {
		prefixDir := filepath.Join(t.TempDir(), "s1")
		if err := os.MkdirAll(prefixDir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(prefixDir, "00000001.wal"), buf[:b], 0o644); err != nil {
			t.Fatal(err)
		}
		r := ReplayDir("s1", prefixDir)
		if r.Err != nil {
			t.Fatalf("prefix %d (records 0..%d): %v", b, i, r.Err)
		}
		if r.Truncated {
			t.Fatalf("prefix %d: boundary-aligned prefix reported torn", b)
		}
		if r.Snapshot == nil || r.Finished {
			continue
		}
		f := restoreAndFinish(t, r.Snapshot)
		if len(f.Violations) != 0 {
			t.Fatalf("prefix after record %d: violations %v", i, f.Violations)
		}
	}
}

func TestTornTailTruncates(t *testing.T) {
	st := openStore(t, Options{Fsync: FsyncNever})
	w, err := st.Writer("s1")
	if err != nil {
		t.Fatal(err)
	}
	s := driveSession(t, w, -1, 4, false)
	defer s.Close()
	w.Close()
	dir, _ := st.SessionDir("s1")
	segs, _ := listSegments(dir)
	path := segs[len(segs)-1].path
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	// A torn frame: plausible header, half the payload missing.
	f.Write([]byte{0xff, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, '{', '}'})
	f.Close()

	r := st.Replay("s1")
	if r.Err != nil {
		t.Fatalf("torn tail must fold cleanly, got %v", r.Err)
	}
	if !r.Truncated {
		t.Fatal("torn tail not reported")
	}
	fr := restoreAndFinish(t, r.Snapshot)
	if len(fr.Violations) != 0 {
		t.Fatalf("violations after torn-tail recovery: %v", fr.Violations)
	}
	// Reopening the writer repairs the tail so appends stay aligned.
	w2, err := st.Writer("s1")
	if err != nil {
		t.Fatalf("Writer after torn tail: %v", err)
	}
	if err := w2.Append(&dispatch.Record{Kind: dispatch.RecError, Reason: "post-repair"}); err != nil {
		t.Fatalf("Append after repair: %v", err)
	}
	w2.Close()
	if r := st.Replay("s1"); r.Err != nil || r.Truncated {
		t.Fatalf("log not clean after repair: err=%v truncated=%v", r.Err, r.Truncated)
	}
}

func TestMidLogCorruptionFailsSoft(t *testing.T) {
	st := openStore(t, Options{Fsync: FsyncNever})
	w, err := st.Writer("s1")
	if err != nil {
		t.Fatal(err)
	}
	s := driveSession(t, w, -1, 4, false)
	defer s.Close()
	w.Close()
	dir, _ := st.SessionDir("s1")
	segs, _ := listSegments(dir)
	path := segs[0].path
	buf, _ := os.ReadFile(path)
	if len(buf) < 64 {
		t.Fatalf("log too small to corrupt meaningfully (%d bytes)", len(buf))
	}
	buf[len(buf)/3] ^= 0x40 // flip a bit well before the tail
	if err := os.WriteFile(path, buf, 0o644); err != nil {
		t.Fatal(err)
	}
	r := st.Replay("s1")
	if r.Err == nil {
		t.Fatal("mid-log corruption folded cleanly")
	}
	// And the writer refuses to continue a corrupt log.
	if _, err := st.Writer("s1"); err == nil {
		t.Fatal("Writer opened a corrupt log")
	}
}

func TestDiskFaultInjection(t *testing.T) {
	t.Run("short-write", func(t *testing.T) {
		inj := fault.New(fault.Plan{Rates: map[fault.Point]float64{fault.JournalShortWrite: 1}, Seed: 1})
		st := openStore(t, Options{Fsync: FsyncNever, Faults: inj})
		w, err := st.Writer("s1")
		if err != nil {
			t.Fatal(err)
		}
		err = w.Append(&dispatch.Record{Kind: dispatch.RecCreate, Snapshot: &dispatch.Snapshot{Algorithm: "ReplanDER", Cores: 2, Model: testModel()}})
		if err == nil {
			t.Fatal("short write not surfaced")
		}
		w.Close()
		// The write was truncated back: the log is empty but parseable.
		r := st.Replay("s1")
		if r.Err != nil || r.Snapshot != nil || r.Truncated {
			t.Fatalf("short write left residue: err=%v snap=%v torn=%v", r.Err, r.Snapshot != nil, r.Truncated)
		}
		if inj.Fired(fault.JournalShortWrite) == 0 {
			t.Fatal("injector bookkeeping lost the fault")
		}
	})
	t.Run("fsync-error", func(t *testing.T) {
		inj := fault.New(fault.Plan{Rates: map[fault.Point]float64{fault.JournalFsyncError: 1}, Seed: 1})
		st := openStore(t, Options{Fsync: FsyncAlways, Faults: inj})
		w, err := st.Writer("s1")
		if err != nil {
			t.Fatal(err)
		}
		err = w.Append(&dispatch.Record{Kind: dispatch.RecCreate, Snapshot: &dispatch.Snapshot{Algorithm: "ReplanDER", Cores: 2, Model: testModel()}})
		if err == nil {
			t.Fatal("fsync failure not surfaced")
		}
		w.Close()
		// The frame reached the page cache; replay still sees it.
		r := st.Replay("s1")
		if r.Err != nil || r.Snapshot == nil {
			t.Fatalf("record lost after fsync error: err=%v", r.Err)
		}
	})
	t.Run("torn-tail", func(t *testing.T) {
		inj := fault.New(fault.Plan{Rates: map[fault.Point]float64{fault.JournalTornTail: 1}, Seed: 1})
		st := openStore(t, Options{Fsync: FsyncNever, Faults: inj})
		w, err := st.Writer("s1")
		if err != nil {
			t.Fatal(err)
		}
		// The torn append reports success — the caller learns on the next one.
		if err := w.Append(&dispatch.Record{Kind: dispatch.RecCreate, Snapshot: &dispatch.Snapshot{Algorithm: "ReplanDER", Cores: 2, Model: testModel()}}); err != nil {
			t.Fatalf("torn append must report success, got %v", err)
		}
		if err := w.Append(&dispatch.Record{Kind: dispatch.RecError}); err == nil {
			t.Fatal("writer survived its own crash")
		}
		w.Close()
		r := st.Replay("s1")
		if r.Err != nil || !r.Truncated {
			t.Fatalf("torn tail not truncated: err=%v truncated=%v", r.Err, r.Truncated)
		}
	})
	t.Run("session-degrades", func(t *testing.T) {
		inj := fault.New(fault.Plan{Rates: map[fault.Point]float64{fault.JournalShortWrite: 0.5}, Seed: 7})
		st := openStore(t, Options{Fsync: FsyncNever, Faults: inj})
		w, err := st.Writer("s1")
		if err != nil {
			t.Fatal(err)
		}
		var hookErrs int
		s, err := dispatch.New(dispatch.Config{
			Cores: 2, Model: testModel(), SkipRatio: true, Journal: w,
			Hooks: dispatch.Hooks{JournalError: func(error) { hookErrs++ }},
		})
		if err != nil {
			// The very first (create) append may already hit the fault;
			// that is a legal outcome of attach-at-construction.
			return
		}
		defer s.Close()
		ctx := context.Background()
		for i := 0; i < 10; i++ {
			at := float64(i)
			_, _, err := s.Arrive(ctx, at, task.Set{{Release: at, Work: 0.3, Deadline: at + 2}})
			if err != nil {
				t.Fatalf("Arrive must survive journal faults, got %v", err)
			}
		}
		if !s.JournalBroken() {
			t.Fatal("session never degraded under a 50% short-write rate")
		}
		if hookErrs != 1 {
			t.Fatalf("JournalError hook fired %d times, want exactly once", hookErrs)
		}
		if _, err := s.Finish(ctx); err != nil {
			t.Fatalf("Finish in degraded mode: %v", err)
		}
	})
}

func TestSealEvicted(t *testing.T) {
	st := openStore(t, Options{Fsync: FsyncNever})
	w, err := st.Writer("s1")
	if err != nil {
		t.Fatal(err)
	}
	s := driveSession(t, w, 0, 3, false)
	s.Seal("evicted")
	s.Seal("evicted") // idempotent
	s.Close()
	w.Close()
	r := st.Replay("s1")
	if r.Err != nil {
		t.Fatalf("Replay: %v", r.Err)
	}
	if !r.Finished || r.FinishReason != "evicted" {
		t.Fatalf("sealed session not finished/evicted: %v %q", r.Finished, r.FinishReason)
	}
}

func TestRestartContinuesLog(t *testing.T) {
	dir := t.TempDir()
	st, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	w, err := st.Writer("s1")
	if err != nil {
		t.Fatal(err)
	}
	s := driveSession(t, w, -1, 4, false)
	preStats := s.Stats()
	s.Close()
	w.Close()
	st.Close()

	// "Restart": fresh store over the same dir, replay, restore with a
	// continuing journal, run more arrivals, finish.
	st2, err := Open(dir, Options{Fsync: FsyncNever})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	r := st2.Replay("s1")
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	if r.Snapshot.Seq == 0 {
		t.Fatal("recovered snapshot lost the seq high-water mark")
	}
	w2, err := st2.Writer("s1")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	s2, err := dispatch.Restore(ctx, r.Snapshot, dispatch.Config{SkipRatio: true, Journal: w2})
	if err != nil {
		t.Fatalf("Restore: %v", err)
	}
	defer s2.Close()
	if got := s2.Stats(); got.Tasks != preStats.Tasks {
		t.Fatalf("restore lost tasks: %d vs %d", got.Tasks, preStats.Tasks)
	}
	at := preStats.Clock + 1
	if _, _, err := s2.Arrive(ctx, at, task.Set{{Release: at, Work: 0.5, Deadline: at + 2}}); err != nil {
		t.Fatalf("Arrive after restore: %v", err)
	}
	f, err := s2.Finish(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(f.Violations) != 0 {
		t.Fatalf("violations after restart continuation: %v", f.Violations)
	}
	w2.Close()
	r2 := st2.Replay("s1")
	if r2.Err != nil || !r2.Finished {
		t.Fatalf("final replay: err=%v finished=%v", r2.Err, r2.Finished)
	}
	if got, want := len(r2.Snapshot.Tasks), preStats.Tasks+1; got != want {
		t.Fatalf("final replay has %d tasks, want %d", got, want)
	}
}

func TestEventDurabilityOrdering(t *testing.T) {
	// Events must reach subscribers only after their record is durable:
	// with a journal that fails every append after the first, the only
	// events a subscriber may see before the failure event are ones
	// whose append succeeded.
	st := openStore(t, Options{Fsync: FsyncNever})
	w, err := st.Writer("s1")
	if err != nil {
		t.Fatal(err)
	}
	s := driveSession(t, w, -1, 3, false)
	defer s.Close()
	w.Close()
	r := st.Replay("s1")
	if r.Err != nil {
		t.Fatal(r.Err)
	}
	// Every event in the recovered ring must have seq < recovered Seq,
	// and the ring must be strictly ordered.
	last := int64(-1)
	for _, ev := range r.Snapshot.Events {
		if ev.Seq <= last {
			t.Fatalf("event ring not strictly ordered: %d after %d", ev.Seq, last)
		}
		last = ev.Seq
	}
	if last >= r.Snapshot.Seq {
		t.Fatalf("ring contains future seq %d >= high-water %d", last, r.Snapshot.Seq)
	}
	if last < 0 {
		t.Fatal("no events recovered")
	}
}

// FuzzJournalReplay mutates raw log bytes: replay must never panic, and
// any cleanly folded, unfinished state must restore and finish with
// zero validator findings.
func FuzzJournalReplay(f *testing.F) {
	st, err := Open(f.TempDir(), Options{Fsync: FsyncNever})
	if err != nil {
		f.Fatal(err)
	}
	w, err := st.Writer("seed")
	if err != nil {
		f.Fatal(err)
	}
	s, err := dispatch.New(dispatch.Config{Cores: 2, Model: testModel(), SkipRatio: true, Journal: w, CheckpointEvery: -1})
	if err != nil {
		f.Fatal(err)
	}
	ctx := context.Background()
	for i := 0; i < 4; i++ {
		at := float64(i)
		if _, _, err := s.Arrive(ctx, at, task.Set{
			{Release: at, Work: 0.4, Deadline: at + 2},
			{Release: at, Work: 0.3, Deadline: at + 3},
		}); err != nil {
			f.Fatal(err)
		}
	}
	s.Close()
	w.Close()
	dir, _ := st.SessionDir("seed")
	segs, _ := listSegments(dir)
	seed, err := os.ReadFile(segs[0].path)
	if err != nil {
		f.Fatal(err)
	}
	st.Close()
	f.Add(seed)
	f.Add(seed[:len(seed)/2])
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x00, 0x00, 0x00, 0xff, 0xff, 0xff, 0xff, '{'})

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := filepath.Join(t.TempDir(), "fz")
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "00000001.wal"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		r := ReplayDir("fz", dir) // must not panic, whatever the bytes
		if r.Err != nil || r.Snapshot == nil || r.Finished {
			return
		}
		snap := r.Snapshot
		rs, err := dispatch.Restore(context.Background(), snap, dispatch.Config{SkipRatio: true})
		if err != nil {
			return // failing soft is legal; producing an invalid schedule is not
		}
		defer rs.Close()
		fr, err := rs.Finish(context.Background())
		if err != nil {
			return
		}
		if len(fr.Violations) != 0 {
			t.Fatalf("recovered prefix finished with violations: %v", fr.Violations)
		}
	})
}
