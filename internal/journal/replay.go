package journal

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"math"
	"os"

	"repro/internal/dispatch"
)

// ringCap bounds the recovered event history carried on the replayed
// snapshot (matches the session's default SSE replay ring).
const ringCap = dispatch.DefaultHistory

// SessionReplay is one session's recovery verdict.
type SessionReplay struct {
	// ID is the session ID (the log directory name).
	ID string
	// Snapshot is the folded state: restorable when Err is nil. It is
	// also populated on a best-effort basis when Err is set (the prefix
	// before the corruption), for forensics — never for recovery.
	Snapshot *dispatch.Snapshot
	// Finished reports a finish record: the session completed or was
	// deliberately evicted, and recovery must NOT resurrect it.
	Finished bool
	// FinishReason is the finish record's reason ("finished", "evicted").
	FinishReason string
	// Records counts successfully folded records.
	Records int
	// Segments counts the log's segment files.
	Segments int
	// Truncated reports that a torn tail (partial final frame) was
	// dropped — expected after a crash under a lazy fsync policy.
	Truncated bool
	// Err is non-nil on mid-log corruption (bad length, CRC mismatch
	// with valid data after it, undecodable or inconsistent record):
	// this session's recovery fails soft; others are unaffected.
	Err error
}

// Replay folds session id's log. It never panics on any byte sequence;
// see SessionReplay for the verdict taxonomy.
func (st *Store) Replay(id string) *SessionReplay {
	r := &SessionReplay{ID: id}
	dir, err := st.SessionDir(id)
	if err != nil {
		r.Err = err
		return r
	}
	replayDir(dir, r)
	return r
}

// ReplayDir folds the log in dir (a <sessions>/<id> directory) without
// a Store — the schedjournal CLI's entry point.
func ReplayDir(id, dir string) *SessionReplay {
	r := &SessionReplay{ID: id}
	replayDir(dir, r)
	return r
}

func replayDir(dir string, r *SessionReplay) {
	segs, err := listSegments(dir)
	if err != nil {
		r.Err = err
		return
	}
	r.Segments = len(segs)
	f := &fold{}
	for i, seg := range segs {
		buf, err := os.ReadFile(seg.path)
		if err != nil {
			r.Err = err
			r.Snapshot = f.result()
			return
		}
		isLast := i == len(segs)-1
		consumed, tail, serr := scanFrames(buf, f.apply)
		r.Records = f.records
		switch tail {
		case tailClean:
		case tailTorn:
			if !isLast {
				// Rotation only happens after a complete frame, so a
				// short frame mid-log is corruption, not a torn tail.
				r.Err = fmt.Errorf("segment %08d: torn frame before the final segment (offset %d)", seg.index, consumed)
				r.Snapshot = f.result()
				return
			}
			r.Truncated = true
		case tailCorrupt:
			r.Err = fmt.Errorf("segment %08d: %w (offset %d)", seg.index, serr, consumed)
			r.Snapshot = f.result()
			return
		}
	}
	r.Snapshot = f.result()
	r.Finished = f.finished
	r.FinishReason = f.finishReason
}

// tailState classifies how a segment scan ended.
type tailState int

const (
	tailClean   tailState = iota // every byte consumed as valid frames
	tailTorn                     // partial/short final frame: truncatable
	tailCorrupt                  // bad frame with data after it, bad length, or bad record
)

// scanFrames walks buf frame by frame, invoking fn on each CRC-verified
// payload. It returns the clean-prefix length and the tail verdict. An
// fn error is corruption (the frame was durable and checksummed, so its
// content is authoritative — if it cannot be applied, the log lies).
func scanFrames(buf []byte, fn func(payload []byte) error) (consumed int, tail tailState, err error) {
	off := 0
	for off < len(buf) {
		if len(buf)-off < frameHeader {
			return off, tailTorn, nil
		}
		n := binary.LittleEndian.Uint32(buf[off : off+4])
		sum := binary.LittleEndian.Uint32(buf[off+4 : off+8])
		if n == 0 || n > maxRecordBytes {
			return off, tailCorrupt, fmt.Errorf("invalid frame length %d", n)
		}
		end := off + frameHeader + int(n)
		if end > len(buf) || end < off {
			return off, tailTorn, nil
		}
		payload := buf[off+frameHeader : end]
		if crc32.Checksum(payload, castagnoli) != sum {
			if end == len(buf) {
				// A bit flip in the final frame and a torn write are
				// indistinguishable here; truncating is the safe read.
				return off, tailTorn, nil
			}
			return off, tailCorrupt, fmt.Errorf("crc mismatch")
		}
		if fn != nil {
			if err := fn(payload); err != nil {
				return off, tailCorrupt, err
			}
		}
		off = end
	}
	return off, tailClean, nil
}

// fold is the replay accumulator: create/checkpoint records reset it,
// delta records mutate it, counters are last-record-wins.
type fold struct {
	snap         *dispatch.Snapshot
	events       []dispatch.Event
	records      int
	finished     bool
	finishReason string
}

func finite(vs ...float64) bool {
	for _, v := range vs {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}

func (f *fold) apply(payload []byte) error {
	var rec dispatch.Record
	if err := json.Unmarshal(payload, &rec); err != nil {
		return fmt.Errorf("undecodable record: %w", err)
	}
	switch rec.Kind {
	case dispatch.RecCreate, dispatch.RecCheckpoint:
		if rec.Snapshot == nil {
			return fmt.Errorf("%s record without a snapshot", rec.Kind)
		}
		f.snap = rec.Snapshot
		f.events = append(f.events[:0], rec.Snapshot.Events...)
		f.snap.Events = nil
	case dispatch.RecArrival:
		if f.snap == nil {
			return errNoCheckpoint
		}
		for _, ts := range rec.Tasks {
			if !finite(ts.Release, ts.Work, ts.Deadline, ts.Remaining, ts.ArrivedAt) || ts.Work <= 0 {
				return fmt.Errorf("arrival with non-finite or non-positive task parameters")
			}
			f.snap.Tasks = append(f.snap.Tasks, ts)
		}
	case dispatch.RecCommit:
		if f.snap == nil {
			return errNoCheckpoint
		}
		for _, seg := range rec.Segments {
			if seg.Task < 0 || seg.Task >= len(f.snap.Tasks) {
				return fmt.Errorf("commit references unknown task %d", seg.Task)
			}
			if !finite(seg.Start, seg.End, seg.Frequency) {
				return fmt.Errorf("commit with non-finite segment")
			}
			f.snap.Committed = append(f.snap.Committed, seg)
		}
		for _, d := range rec.Deltas {
			if d.Task < 0 || d.Task >= len(f.snap.Tasks) {
				return fmt.Errorf("commit delta references unknown task %d", d.Task)
			}
			if !finite(d.Remaining, d.CompletedAt) {
				return fmt.Errorf("commit delta with non-finite state")
			}
			ts := &f.snap.Tasks[d.Task]
			ts.Remaining = d.Remaining
			ts.Done = d.Done
			ts.CompletedAt = d.CompletedAt
		}
	case dispatch.RecShed:
		if f.snap == nil {
			return errNoCheckpoint
		}
		for _, id := range rec.ShedIDs {
			if id < 0 || id >= len(f.snap.Tasks) {
				return fmt.Errorf("shed references unknown task %d", id)
			}
			f.snap.Tasks[id].Shed = true
		}
	case dispatch.RecReplan, dispatch.RecError:
		if f.snap == nil {
			return errNoCheckpoint
		}
	case dispatch.RecFinish:
		if f.snap == nil {
			return errNoCheckpoint
		}
		f.finished = true
		f.finishReason = rec.Reason
	default:
		return fmt.Errorf("unknown record kind %q", rec.Kind)
	}
	if !finite(rec.Clock, rec.Realized) {
		return fmt.Errorf("record with non-finite counters")
	}
	f.snap.Now = rec.Clock
	f.snap.Seq = rec.Seq
	f.snap.Realized = rec.Realized
	f.snap.Replans = rec.Replans
	f.snap.Commits = rec.Commits
	f.snap.ShedCount = rec.ShedCount
	f.events = append(f.events, rec.Events...)
	if len(f.events) > ringCap {
		f.events = append(f.events[:0], f.events[len(f.events)-ringCap:]...)
	}
	f.records++
	return nil
}

// result finalizes the folded snapshot (attaching the recovered event
// ring); nil when no create/checkpoint was ever folded.
func (f *fold) result() *dispatch.Snapshot {
	if f.snap == nil {
		return nil
	}
	f.snap.Events = append([]dispatch.Event(nil), f.events...)
	return f.snap
}
