package cliflag

import (
	"bytes"
	"strings"
	"testing"
)

func newTestSet(t *testing.T) (*Set, *bytes.Buffer, *int) {
	t.Helper()
	s := New("tool")
	var out bytes.Buffer
	code := -1
	s.Output = &out
	s.Exit = func(c int) { code = c }
	return s, &out, &code
}

func TestAliasParsesIntoCanonical(t *testing.T) {
	s, _, code := newTestSet(t)
	o := s.String("o", "", "output file")
	s.Alias("o", "out")

	s.Parse([]string{"-out", "result.json"})
	if *code != -1 {
		t.Fatalf("exit called with %d", *code)
	}
	if *o != "result.json" {
		t.Fatalf("canonical flag = %q, want result.json", *o)
	}
}

func TestCanonicalStillWorks(t *testing.T) {
	s, _, code := newTestSet(t)
	n := s.Int("ntasks", 10, "tasks per instance")
	s.Alias("ntasks", "tasks")

	s.Parse([]string{"-ntasks", "7"})
	if *code != -1 || *n != 7 {
		t.Fatalf("got code=%d n=%d, want -1, 7", *code, *n)
	}
}

func TestUnknownFlagExits2WithUsage(t *testing.T) {
	s, out, code := newTestSet(t)
	s.String("addr", ":8080", "listen address")

	s.Parse([]string{"-bogus"})
	if *code != 2 {
		t.Fatalf("exit code = %d, want 2", *code)
	}
	text := out.String()
	if !strings.Contains(text, "usage: tool") {
		t.Fatalf("usage missing from output:\n%s", text)
	}
	if !strings.Contains(text, "-addr") {
		t.Fatalf("canonical flag missing from usage:\n%s", text)
	}
}

func TestMalformedValueExits2(t *testing.T) {
	s, _, code := newTestSet(t)
	s.Int("seed", 1, "rng seed")

	s.Parse([]string{"-seed", "notanint"})
	if *code != 2 {
		t.Fatalf("exit code = %d, want 2", *code)
	}
}

func TestHelpExitsZero(t *testing.T) {
	s, out, code := newTestSet(t)
	s.Bool("quiet", false, "suppress logs")

	s.Parse([]string{"-h"})
	if *code != 0 {
		t.Fatalf("exit code = %d, want 0", *code)
	}
	if !strings.Contains(out.String(), "-quiet") {
		t.Fatalf("usage missing -quiet:\n%s", out.String())
	}
}

func TestUsageHidesAliases(t *testing.T) {
	s, out, _ := newTestSet(t)
	s.String("o", "", "output file")
	s.Alias("o", "out", "output")

	s.Usage()
	text := out.String()
	if !strings.Contains(text, "-o\n") {
		t.Fatalf("canonical -o missing:\n%s", text)
	}
	if strings.Contains(text, "-out") || strings.Contains(text, "-output") {
		t.Fatalf("alias leaked into usage:\n%s", text)
	}
}

func TestAliasUnknownCanonicalPanics(t *testing.T) {
	s, _, _ := newTestSet(t)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for unknown canonical")
		}
	}()
	s.Alias("missing", "m")
}

func TestVisitReportsCanonicalNames(t *testing.T) {
	s, _, _ := newTestSet(t)
	s.String("o", "", "output file")
	s.Alias("o", "out")
	s.Int("seed", 1, "rng seed")

	s.Parse([]string{"-out", "x", "-seed", "3"})
	var got []string
	s.Visit(func(name string) { got = append(got, name) })
	joined := strings.Join(got, ",")
	if !strings.Contains(joined, "o") || !strings.Contains(joined, "seed") {
		t.Fatalf("Visit reported %v", got)
	}
	for _, n := range got {
		if n == "out" {
			t.Fatalf("Visit leaked alias name: %v", got)
		}
	}
}

func TestPositionalArgs(t *testing.T) {
	s, _, _ := newTestSet(t)
	s.Bool("v", false, "verbose")
	s.Parse([]string{"-v", "a", "b"})
	if got := s.Args(); len(got) != 2 || got[0] != "a" || got[1] != "b" {
		t.Fatalf("Args() = %v", got)
	}
}
