// Package cliflag standardizes command-line handling across cmd/*: one
// canonical name per flag with hidden back-compat aliases, and a
// uniform failure mode — unknown or malformed flags print usage to
// stderr and exit 2 instead of half-parsing.
//
// The repo-wide canonical vocabulary:
//
//	-addr     listen/target address
//	-seed     RNG seed
//	-format   output format selector
//	-timeout  per-request/solve deadline
//	-o        output file path
//	-ntasks   tasks per generated instance
//
// Tools that historically used other spellings register them via Alias;
// aliases keep working but stay out of -h output so the documented
// surface converges on the canonical names.
package cliflag

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"
)

// Set wraps a flag.FlagSet with alias support and exit-2-on-error
// parsing.
type Set struct {
	fs      *flag.FlagSet
	name    string
	aliases map[string]string // alias -> canonical
	// Exit is the exit seam (tests replace it). Defaults to os.Exit.
	Exit func(code int)
	// Output receives usage text. Defaults to os.Stderr.
	Output io.Writer
}

// New builds an empty flag set named after the command.
func New(name string) *Set {
	s := &Set{
		fs:      flag.NewFlagSet(name, flag.ContinueOnError),
		name:    name,
		aliases: make(map[string]string),
		Exit:    os.Exit,
		Output:  os.Stderr,
	}
	// The FlagSet's own error output is silenced: Parse prints one
	// coherent usage block instead of flag's default interleaving.
	s.fs.SetOutput(io.Discard)
	s.fs.Usage = func() {}
	return s
}

func (s *Set) String(name, value, usage string) *string {
	return s.fs.String(name, value, usage)
}

func (s *Set) Int(name string, value int, usage string) *int {
	return s.fs.Int(name, value, usage)
}

func (s *Set) Int64(name string, value int64, usage string) *int64 {
	return s.fs.Int64(name, value, usage)
}

func (s *Set) Float64(name string, value float64, usage string) *float64 {
	return s.fs.Float64(name, value, usage)
}

func (s *Set) Bool(name string, value bool, usage string) *bool {
	return s.fs.Bool(name, value, usage)
}

func (s *Set) Duration(name string, value time.Duration, usage string) *time.Duration {
	return s.fs.Duration(name, value, usage)
}

// Var registers a custom flag.Value under the canonical name.
func (s *Set) Var(v flag.Value, name, usage string) {
	s.fs.Var(v, name, usage)
}

// Alias makes old spellings parse into an already-registered canonical
// flag. Aliases are hidden from usage output. Panics on an unknown
// canonical name (a programming error, caught by any test that builds
// the flag set).
func (s *Set) Alias(canonical string, aliases ...string) {
	f := s.fs.Lookup(canonical)
	if f == nil {
		panic(fmt.Sprintf("cliflag: alias target -%s not registered", canonical))
	}
	for _, a := range aliases {
		s.fs.Var(f.Value, a, f.Usage)
		s.aliases[a] = canonical
	}
}

// Usage prints the canonical flag surface (aliases omitted).
func (s *Set) Usage() {
	fmt.Fprintf(s.Output, "usage: %s [flags]\n", s.name)
	var rows []*flag.Flag
	s.fs.VisitAll(func(f *flag.Flag) {
		if _, isAlias := s.aliases[f.Name]; !isAlias {
			rows = append(rows, f)
		}
	})
	sort.Slice(rows, func(i, j int) bool { return rows[i].Name < rows[j].Name })
	for _, f := range rows {
		def := ""
		if f.DefValue != "" && f.DefValue != "false" {
			def = fmt.Sprintf(" (default %s)", f.DefValue)
		}
		fmt.Fprintf(s.Output, "  -%s\n\t%s%s\n", f.Name, f.Usage, def)
	}
}

// Parse parses args (not including the command name). Errors — unknown
// flags, malformed values — print the error plus usage and exit 2.
// A bare -h/-help prints usage and exits 0.
func (s *Set) Parse(args []string) {
	err := s.fs.Parse(args)
	if err == nil {
		return
	}
	if err == flag.ErrHelp {
		s.Usage()
		s.Exit(0)
		return
	}
	fmt.Fprintf(s.Output, "%s: %v\n", s.name, err)
	s.Usage()
	s.Exit(2)
}

// Args returns the non-flag arguments.
func (s *Set) Args() []string { return s.fs.Args() }

// Visit forwards to the underlying FlagSet (flags set on the command
// line only), with alias hits reported under their canonical name.
func (s *Set) Visit(fn func(name string)) {
	seen := make(map[string]bool)
	s.fs.Visit(func(f *flag.Flag) {
		name := f.Name
		if c, ok := s.aliases[name]; ok {
			name = c
		}
		if !seen[name] {
			seen[name] = true
			fn(name)
		}
	})
}
