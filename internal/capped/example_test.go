package capped_test

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/capped"
	"repro/internal/power"
	"repro/internal/task"
)

// A single task that needs 500 MHz sustained on a processor capped at
// 1000 MHz: the plain pipeline already fits, so no fallback is used and
// the frequency is simply C/(D−R).
func ExampleSchedule() {
	ts := task.MustNew([3]float64{0, 5000, 10}) // 500 MHz intensity
	fit, err := power.FitDefault(power.IntelXScale())
	if err != nil {
		panic(err)
	}
	res, err := capped.Schedule(ts, 1, fit.Model, alloc.DER, 1000)
	if err != nil {
		panic(err)
	}
	fmt.Printf("fallback: %v, frequency %.0f MHz\n", res.UsedFallback, res.Frequencies[0])
	// Output:
	// fallback: false, frequency 500 MHz
}

// An impossible instance — 2000 MHz sustained against a 1000 MHz cap —
// is rejected with ErrInfeasible rather than silently missing deadlines.
func ExampleSchedule_infeasible() {
	ts := task.MustNew([3]float64{0, 4000, 2})
	fit, err := power.FitDefault(power.IntelXScale())
	if err != nil {
		panic(err)
	}
	_, err = capped.Schedule(ts, 4, fit.Model, alloc.DER, 1000)
	fmt.Println(err == capped.ErrInfeasible)
	// Output:
	// true
}
