package capped

import (
	"errors"
	"math"
	"math/rand"
	"testing"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/discrete"
	"repro/internal/feas"
	"repro/internal/power"
	"repro/internal/sim"
	"repro/internal/task"
)

// stressedWorkload generates instances dense enough that the plain F2
// schedule frequently exceeds the XScale cap (see fig11-stress).
func stressedWorkload(rng *rand.Rand, n int) task.Set {
	p := task.XScaleDefaults(n)
	p.ReleaseHi = 100
	p.IntensityLo = 0.5
	return task.MustGenerate(rng, p)
}

func xscaleModel(t testing.TB) power.Model {
	t.Helper()
	fit, err := power.FitDefault(power.IntelXScale())
	if err != nil {
		t.Fatal(err)
	}
	return fit.Model
}

func TestNoFallbackWhenUnderCap(t *testing.T) {
	// The paper's base workload never exceeds the cap; the result must be
	// byte-identical to the plain pipeline.
	rng := rand.New(rand.NewSource(3))
	pm := xscaleModel(t)
	ts := task.MustGenerate(rng, task.XScaleDefaults(15))
	res, err := Schedule(ts, 4, pm, alloc.DER, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if res.UsedFallback {
		t.Error("fallback should not trigger on the base workload")
	}
	base := core.MustSchedule(ts, 4, pm, alloc.DER, core.Options{Tolerance: 1e-9})
	if math.Abs(res.Energy-base.FinalEnergy) > 1e-9*base.FinalEnergy {
		t.Errorf("energy %g != plain pipeline %g", res.Energy, base.FinalEnergy)
	}
}

func TestCapRespectedUnderStress(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pm := xscaleModel(t)
	const cap = 1000.0
	fallbacks := 0
	for trial := 0; trial < 15; trial++ {
		ts := stressedWorkload(rng, 40)
		res, err := Schedule(ts, 4, pm, alloc.DER, cap)
		if errors.Is(err, ErrInfeasible) {
			// Genuinely unschedulable instance: confirm with the analyzer.
			ok, ferr := feas.CheckTaskSet(ts, 4, cap)
			if ferr != nil {
				t.Fatal(ferr)
			}
			if ok {
				t.Fatalf("trial %d: declared infeasible but analyzer disagrees", trial)
			}
			continue
		}
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if res.UsedFallback {
			fallbacks++
		}
		for i, f := range res.Frequencies {
			if f > cap*(1+1e-9) {
				t.Errorf("trial %d: task %d frequency %g above cap", trial, i, f)
			}
		}
		// Quantizing the capped schedule never misses.
		a := discrete.QuantizeSchedule(res.Schedule, power.IntelXScale(), discrete.RoundUp)
		if a.Missed {
			t.Errorf("trial %d: capped schedule missed %v", trial, a.MissedTasks)
		}
		// And it executes cleanly.
		rep, err := sim.Run(res.Schedule, pm)
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Fatalf("trial %d: %v", trial, rep.Violations)
		}
	}
	if fallbacks == 0 {
		t.Error("stress workload never triggered the fallback — test is vacuous")
	}
}

func TestFallbackBeatsNaiveCapRun(t *testing.T) {
	// The fallback stretches tasks beyond their mandatory C/f_max time
	// wherever capacity allows, so its energy must be at most running
	// everything at the cap.
	rng := rand.New(rand.NewSource(21))
	pm := xscaleModel(t)
	for trial := 0; trial < 10; trial++ {
		ts := stressedWorkload(rng, 40)
		res, err := Schedule(ts, 4, pm, alloc.DER, 1000)
		if errors.Is(err, ErrInfeasible) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		var allAtCap float64
		for _, tk := range ts {
			allAtCap += pm.Energy(tk.Work, 1000)
		}
		if res.Energy > allAtCap*(1+1e-9) {
			t.Errorf("trial %d: capped energy %g worse than running everything at f_max %g",
				trial, res.Energy, allAtCap)
		}
	}
}

func TestInfeasibleInstanceRejected(t *testing.T) {
	// A single task needing 2000 MHz can never fit under a 1000 cap.
	ts := task.MustNew([3]float64{0, 4000, 2})
	pm := xscaleModel(t)
	_, err := Schedule(ts, 4, pm, alloc.DER, 1000)
	if !errors.Is(err, ErrInfeasible) {
		t.Errorf("expected ErrInfeasible, got %v", err)
	}
}

func TestValidation(t *testing.T) {
	ts := task.Fig1Example()
	pm := power.Unit(3, 0.01)
	if _, err := Schedule(ts, 2, pm, alloc.DER, 0); err == nil {
		t.Error("zero cap should fail")
	}
	// Cap below the critical frequency is rejected.
	heavy := power.Unit(2, 100) // f* = 10
	if _, err := Schedule(ts, 2, heavy, alloc.DER, 1); err == nil {
		t.Error("cap below critical frequency should fail")
	}
}

func TestWorkCompletedUnderFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	pm := xscaleModel(t)
	for trial := 0; trial < 8; trial++ {
		ts := stressedWorkload(rng, 45)
		res, err := Schedule(ts, 4, pm, alloc.DER, 1000)
		if errors.Is(err, ErrInfeasible) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		done := res.Schedule.CompletedWork()
		for _, tk := range ts {
			if done[tk.ID] < tk.Work*(1-1e-6) {
				t.Errorf("trial %d: task %d completed %g of %g", trial, tk.ID, done[tk.ID], tk.Work)
			}
		}
	}
}

func BenchmarkCappedSchedule(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	fit, err := power.FitDefault(power.IntelXScale())
	if err != nil {
		b.Fatal(err)
	}
	ts := stressedWorkload(rng, 40)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Schedule(ts, 4, fit.Model, alloc.DER, 1000); err != nil && !errors.Is(err, ErrInfeasible) {
			b.Fatal(err)
		}
	}
}
