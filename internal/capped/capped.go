// Package capped extends the paper's pipeline with a frequency ceiling:
// on processors with a bounded frequency range, the DER-based final
// schedule can demand frequencies above f_max and miss deadlines
// (Section VI.C's observation, reproduced by the fig11-stress
// experiment). This package guarantees a miss-free schedule on every
// instance that is feasible at f_max, while spending the remaining slack
// on energy:
//
//  1. Run the paper's pipeline. If the final frequencies stay within
//     f_max, done — nothing changes.
//  2. Otherwise build a two-phase max-flow allocation: phase one routes
//     each task's mandatory time C_i/f_max (saturating it certifies
//     feasibility); phase two augments toward each task's ideal
//     execution time C_i/f_i^O on the residual network, stretching tasks
//     wherever capacity remains.
//  3. Set each task's frequency to max(f*, C_i/A_i) ≤ f_max and realize
//     the allocation with Algorithm 1.
//
// The result is a deadline-guaranteed schedule whose energy approaches
// the unconstrained heuristic's when the cap is slack.
package capped

import (
	"fmt"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/ideal"
	"repro/internal/interval"
	"repro/internal/maxflow"
	"repro/internal/pack"
	"repro/internal/power"
	"repro/internal/schedule"
	"repro/internal/task"
)

// Result is the outcome of the cap-aware scheduler.
type Result struct {
	// Schedule is the realized, validated schedule; every frequency is
	// ≤ the cap.
	Schedule *schedule.Schedule
	// Energy under the continuous model.
	Energy float64
	// Frequencies per task.
	Frequencies []float64
	// UsedFallback reports whether the two-phase flow allocation was
	// needed (false means the plain pipeline already fit under the cap).
	UsedFallback bool
}

// ErrInfeasible is returned when the task set cannot meet its deadlines
// at the frequency cap on the given core count — no scheduler could.
var ErrInfeasible = fmt.Errorf("capped: instance infeasible at the frequency cap")

// Schedule runs the cap-aware pipeline. The cap must exceed the model's
// critical frequency (otherwise running at the cap is forced anyway).
func Schedule(ts task.Set, m int, pm power.Model, method alloc.Method, cap float64) (*Result, error) {
	if !(cap > 0) {
		return nil, fmt.Errorf("capped: cap %g must be positive", cap)
	}
	if pm.CriticalFrequency() > cap {
		return nil, fmt.Errorf("capped: critical frequency %g above the cap %g", pm.CriticalFrequency(), cap)
	}
	base, err := core.Schedule(ts, m, pm, method, core.Options{Tolerance: 1e-9})
	if err != nil {
		return nil, err
	}
	within := true
	for _, f := range base.FinalFrequencies {
		if f > cap*(1+1e-12) {
			within = false
			break
		}
	}
	if within {
		return &Result{
			Schedule:     base.Final,
			Energy:       base.FinalEnergy,
			Frequencies:  base.FinalFrequencies,
			UsedFallback: false,
		}, nil
	}
	return fallback(base.Decomp, base.Ideal, m, pm, cap)
}

// fallback builds the two-phase flow allocation and realizes it.
func fallback(d *interval.Decomposition, plan *ideal.Plan, m int, pm power.Model, cap float64) (*Result, error) {
	n := len(d.Tasks)
	N := d.NumSubs()
	g := maxflow.New(n + N + 2)
	src, sink := 0, n+N+1

	type xe struct {
		i, j int
		h    maxflow.EdgeHandle
	}
	var xs []xe
	mandatory := make([]float64, n)
	var demand float64
	for i, tk := range d.Tasks {
		mandatory[i] = tk.Work / cap
		demand += mandatory[i]
		if _, err := g.AddEdge(src, 1+i, mandatory[i]); err != nil {
			return nil, err
		}
		for _, j := range d.SubsOf(i) {
			h, err := g.AddEdge(1+i, 1+n+j, d.Subs[j].Length())
			if err != nil {
				return nil, err
			}
			xs = append(xs, xe{i: i, j: j, h: h})
		}
	}
	for j, sub := range d.Subs {
		if _, err := g.AddEdge(1+n+j, sink, float64(m)*sub.Length()); err != nil {
			return nil, err
		}
	}
	flow, err := g.MaxFlow(src, sink)
	if err != nil {
		return nil, err
	}
	if flow < demand*(1-1e-9)-1e-9 {
		return nil, ErrInfeasible
	}
	// Phase two: stretch toward the ideal execution times on the
	// residual network. Extra capacity per task: ideal time − mandatory.
	for i := range d.Tasks {
		extra := plan.Tasks[i].ExecTime() - mandatory[i]
		if extra <= 0 {
			continue
		}
		if _, err := g.AddEdge(src, 1+i, extra); err != nil {
			return nil, err
		}
	}
	if _, err := g.MaxFlow(src, sink); err != nil {
		return nil, err
	}

	// Extract the allocation and set frequencies.
	x := make([]map[int]float64, n)
	avail := make([]float64, n)
	for i := range x {
		x[i] = map[int]float64{}
	}
	for _, e := range xs {
		v := g.Flow(e.h)
		if v <= 0 {
			continue
		}
		if l := d.Subs[e.j].Length(); v > l {
			v = l // absorb float spill
		}
		x[e.i][e.j] = v
		avail[e.i] += v
	}
	freqs := make([]float64, n)
	var energy float64
	for i, tk := range d.Tasks {
		if avail[i] <= 0 {
			return nil, fmt.Errorf("capped: task %d received no time", i)
		}
		f := pm.BestFrequency(tk.Work, avail[i])
		if f > cap*(1+1e-9) {
			return nil, fmt.Errorf("capped: internal error, frequency %g above cap %g", f, cap)
		}
		if f > cap {
			f = cap
		}
		freqs[i] = f
		energy += pm.Energy(tk.Work, f)
	}

	// Realize: per subinterval, each task uses its share scaled by the
	// fraction of allocated time its final frequency actually needs.
	out := schedule.New(d.Tasks, m)
	for j, sub := range d.Subs {
		var reqs []pack.Request
		for _, id := range sub.Overlapping {
			share := x[id][j]
			if share <= 0 {
				continue
			}
			use := (d.Tasks[id].Work / freqs[id]) / avail[id]
			t := share * use
			if t <= 0 {
				continue
			}
			reqs = append(reqs, pack.Request{Task: id, Time: t})
		}
		pieces, err := pack.Interval(sub.Start, sub.End, m, reqs)
		if err != nil {
			return nil, fmt.Errorf("capped: subinterval %d: %w", j, err)
		}
		for _, p := range pieces {
			out.Add(schedule.Segment{
				Task: p.Task, Core: p.Core,
				Start: p.Start, End: p.End,
				Frequency: freqs[p.Task],
			})
		}
	}
	if errs := out.Validate(1e-6, true); len(errs) > 0 {
		return nil, fmt.Errorf("capped: realized schedule infeasible: %v", errs[0])
	}
	return &Result{
		Schedule:     out,
		Energy:       energy,
		Frequencies:  freqs,
		UsedFallback: true,
	}, nil
}
