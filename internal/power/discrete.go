package power

import (
	"fmt"
	"sort"
)

// Level is one operating point of a practical DVFS processor.
type Level struct {
	Frequency float64 // e.g. MHz
	Power     float64 // e.g. mW, measured at that frequency
}

// Table is an ascending list of discrete operating points, the practical
// counterpart of Model (Section VI.C: "practical processing cores are only
// able to execute on a set of discrete frequency values").
type Table struct {
	levels []Level
}

// NewTable builds a Table from operating points; the points are sorted by
// frequency and validated (positive, strictly increasing frequencies,
// positive non-decreasing powers).
func NewTable(levels ...Level) (*Table, error) {
	if len(levels) == 0 {
		return nil, fmt.Errorf("power: table needs at least one level")
	}
	ls := make([]Level, len(levels))
	copy(ls, levels)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Frequency < ls[j].Frequency })
	for i, l := range ls {
		if l.Frequency <= 0 || l.Power <= 0 {
			return nil, fmt.Errorf("power: level %d (%g MHz, %g mW) must be positive", i, l.Frequency, l.Power)
		}
		if i > 0 {
			if l.Frequency == ls[i-1].Frequency {
				return nil, fmt.Errorf("power: duplicate frequency %g", l.Frequency)
			}
			if l.Power < ls[i-1].Power {
				return nil, fmt.Errorf("power: power must be non-decreasing in frequency (level %d)", i)
			}
		}
	}
	return &Table{levels: ls}, nil
}

// MustNewTable is NewTable but panics on error.
func MustNewTable(levels ...Level) *Table {
	t, err := NewTable(levels...)
	if err != nil {
		panic(err)
	}
	return t
}

// IntelXScale returns the frequency/power characteristics of the Intel
// XScale processor used in Section VI.C (Table III): frequencies in MHz,
// powers in mW.
func IntelXScale() *Table {
	return MustNewTable(
		Level{Frequency: 150, Power: 80},
		Level{Frequency: 400, Power: 170},
		Level{Frequency: 600, Power: 400},
		Level{Frequency: 800, Power: 900},
		Level{Frequency: 1000, Power: 1600},
	)
}

// Levels returns a copy of the operating points in ascending frequency.
func (t *Table) Levels() []Level {
	out := make([]Level, len(t.levels))
	copy(out, t.levels)
	return out
}

// Len returns the number of operating points.
func (t *Table) Len() int { return len(t.levels) }

// MinFrequency returns the lowest available frequency.
func (t *Table) MinFrequency() float64 { return t.levels[0].Frequency }

// MaxFrequency returns the highest available frequency.
func (t *Table) MaxFrequency() float64 { return t.levels[len(t.levels)-1].Frequency }

// Level returns the i-th operating point in ascending frequency order.
func (t *Table) Level(i int) Level { return t.levels[i] }

// RoundUp returns the lowest operating point with frequency ≥ f, which is
// the deadline-safe quantization. ok is false when f exceeds the maximum
// frequency — the task cannot be served and will miss its deadline (the
// phenomenon behind the paper's deadline-miss-probability remarks).
func (t *Table) RoundUp(f float64) (Level, bool) {
	i := sort.Search(len(t.levels), func(i int) bool { return t.levels[i].Frequency >= f })
	if i == len(t.levels) {
		return Level{}, false
	}
	return t.levels[i], true
}

// RoundNearest returns the operating point whose frequency is closest to
// f (ties go up). Unlike RoundUp this may select a frequency below f and
// therefore jeopardize deadlines; it exists for the quantization ablation.
func (t *Table) RoundNearest(f float64) Level {
	i := sort.Search(len(t.levels), func(i int) bool { return t.levels[i].Frequency >= f })
	switch {
	case i == 0:
		return t.levels[0]
	case i == len(t.levels):
		return t.levels[len(t.levels)-1]
	default:
		lo, hi := t.levels[i-1], t.levels[i]
		if f-lo.Frequency < hi.Frequency-f {
			return lo
		}
		return hi
	}
}

// Power returns the table power at frequency f, which must be one of the
// operating points.
func (t *Table) Power(f float64) (float64, error) {
	i := sort.Search(len(t.levels), func(i int) bool { return t.levels[i].Frequency >= f })
	if i < len(t.levels) && t.levels[i].Frequency == f {
		return t.levels[i].Power, nil
	}
	return 0, fmt.Errorf("power: %g is not an operating point", f)
}

// Energy returns the energy of executing work w at operating point l:
// measured power times w/f.
func (l Level) Energy(w float64) float64 {
	if w == 0 {
		return 0
	}
	return l.Power * w / l.Frequency
}
