// Package power implements the processor power models of the paper: the
// continuous DVFS model p(f) = γ·f^α + p0 used throughout the analysis,
// the discrete frequency/power tables of practical processors (Intel
// XScale, Table III), and the curve-fitting procedure that maps a table
// onto the continuous form (Section VI.C).
//
// Conventions: power is consumed only while a core actively executes
// (idle cores sleep at zero power, Section III.B), so the energy of
// executing w units of work at constant frequency f is
//
//	E(w, f) = (γ·f^α + p0) · w/f = w·(γ·f^(α-1) + p0/f).
package power

import (
	"fmt"
	"math"
)

// Model is the continuous power model p(f) = Gamma·f^Alpha + P0.
// The paper mostly uses Gamma = 1; the XScale fit produces Gamma ≠ 1.
type Model struct {
	Gamma float64 // dynamic power coefficient γ > 0
	Alpha float64 // dynamic power exponent α ≥ 2
	P0    float64 // static (leakage) power ≥ 0
}

// Unit returns the canonical unit-coefficient model p(f) = f^alpha + p0.
func Unit(alpha, p0 float64) Model { return Model{Gamma: 1, Alpha: alpha, P0: p0} }

// FastPow returns x^alpha, specialized for the small integer and
// half-integer exponents the evaluation sweeps use (α ∈ {2, 2.5, 3, 4}
// and their α−1 companions). The solver hot paths evaluate f^α millions
// of times per instance; skipping math.Pow's generic path is a measurable
// end-to-end win.
func FastPow(x, alpha float64) float64 {
	switch alpha {
	case 1:
		return x
	case 1.5:
		return x * math.Sqrt(x)
	case 2:
		return x * x
	case 2.5:
		return x * x * math.Sqrt(x)
	case 3:
		return x * x * x
	case 4:
		xx := x * x
		return xx * xx
	}
	return math.Pow(x, alpha)
}

// Validate reports whether the model is physically meaningful and within
// the paper's assumptions (α ≥ 2 guarantees convexity of the energy
// objective, Theorem 1).
func (m Model) Validate() error {
	if !(m.Gamma > 0) {
		return fmt.Errorf("power: gamma %g must be positive", m.Gamma)
	}
	if !(m.Alpha >= 2) {
		return fmt.Errorf("power: alpha %g must be >= 2", m.Alpha)
	}
	if m.P0 < 0 || math.IsNaN(m.P0) || math.IsInf(m.P0, 0) {
		return fmt.Errorf("power: static power %g must be finite and non-negative", m.P0)
	}
	return nil
}

// Power returns p(f) = γ·f^α + p0 for f ≥ 0.
func (m Model) Power(f float64) float64 {
	if f < 0 {
		panic("power: negative frequency")
	}
	if f == 0 {
		// A core at frequency zero is asleep (Section III.B).
		return 0
	}
	return m.Gamma*FastPow(f, m.Alpha) + m.P0
}

// EnergyRate returns the energy consumed per unit of *work* at frequency
// f: p(f)/f = γ·f^(α-1) + p0/f. This is the integrand of Eq. (7).
func (m Model) EnergyRate(f float64) float64 {
	if f <= 0 {
		panic("power: EnergyRate needs f > 0")
	}
	return m.Gamma*FastPow(f, m.Alpha-1) + m.P0/f
}

// Energy returns the energy of executing work w at constant frequency f.
func (m Model) Energy(w, f float64) float64 {
	if w == 0 {
		return 0
	}
	return w * m.EnergyRate(f)
}

// EnergyForTime returns the energy of running a core at frequency f for
// duration t (work f·t): (γf^α + p0)·t.
func (m Model) EnergyForTime(t, f float64) float64 {
	if t == 0 || f == 0 {
		return 0
	}
	return m.Power(f) * t
}

// CriticalFrequency returns f* = (p0/(γ(α-1)))^(1/α), the frequency that
// minimizes energy-per-work. Below f*, the static term dominates and
// running slower wastes energy; the paper's frequency settings are always
// max(f*, C/available time) (Eq. 19 and the final schedules of Section V).
// For p0 = 0 the critical frequency is 0 (stretch as much as possible).
func (m Model) CriticalFrequency() float64 {
	if m.P0 == 0 {
		return 0
	}
	return math.Pow(m.P0/(m.Gamma*(m.Alpha-1)), 1/m.Alpha)
}

// BestFrequency returns the energy-minimal frequency for a task with work
// w and available execution time avail: max(f*, w/avail). This is the
// closed-form solution of the per-task problem (22)-(23).
func (m Model) BestFrequency(w, avail float64) float64 {
	return m.BestFrequencyAt(m.CriticalFrequency(), w, avail)
}

// BestFrequencyAt is BestFrequency with the critical frequency f* already
// computed; solver loops that call it once per task hoist the f* power
// evaluation out of the loop this way.
func (m Model) BestFrequencyAt(fstar, w, avail float64) float64 {
	if w <= 0 {
		panic("power: BestFrequency needs positive work")
	}
	if avail <= 0 {
		panic("power: BestFrequency needs positive available time")
	}
	return math.Max(fstar, w/avail)
}

// TaskEnergy returns the minimal energy for a task with work w given
// available time avail, i.e. Energy(w, BestFrequency(w, avail)).
func (m Model) TaskEnergy(w, avail float64) float64 {
	return m.Energy(w, m.BestFrequency(w, avail))
}

// TaskEnergyAt is TaskEnergy with f* precomputed (see BestFrequencyAt).
func (m Model) TaskEnergyAt(fstar, w, avail float64) float64 {
	return m.Energy(w, m.BestFrequencyAt(fstar, w, avail))
}

func (m Model) String() string {
	s := "p(f) = "
	if m.Gamma != 1 {
		s += fmt.Sprintf("%.4g·", m.Gamma)
	}
	s += fmt.Sprintf("f^%.4g", m.Alpha)
	if m.P0 != 0 {
		s += fmt.Sprintf(" + %.4g", m.P0)
	}
	return s
}
