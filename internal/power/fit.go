package power

import (
	"fmt"
	"math"

	"repro/internal/numeric"
)

// FitResult is the outcome of fitting p(f) = γ·f^α + p0 to a discrete
// power table (Section VI.C). For the Intel XScale table the paper reports
// p(f) = 3.855e-7·f^2.867 + 63.58 (mW, MHz); our fitter lands on the same
// curve shape.
type FitResult struct {
	Model Model
	// RMSE is the root-mean-square error of the fit over the table points,
	// in the table's power unit.
	RMSE float64
}

// Fit computes the least-squares fit of the continuous model to the
// table. For a fixed exponent α the problem is linear in (γ, p0) and
// solved exactly via the 2×2 normal equations; the outer minimization
// over α uses golden-section search on [alphaLo, alphaHi]. Negative
// intercepts are clamped to p0 = 0 with γ refit, keeping the model
// physical. Fit requires at least three table points.
func Fit(t *Table, alphaLo, alphaHi float64) (FitResult, error) {
	if t.Len() < 3 {
		return FitResult{}, fmt.Errorf("power: need >= 3 points to fit, have %d", t.Len())
	}
	if alphaLo <= 0 || alphaHi <= alphaLo {
		return FitResult{}, fmt.Errorf("power: invalid alpha range [%g, %g]", alphaLo, alphaHi)
	}
	sse := func(alpha float64) float64 {
		_, _, s := fitLinear(t, alpha)
		return s
	}
	// The SSE is smooth in α, so Brent's parabolic steps converge much
	// faster than plain golden section.
	alpha := numeric.Brent(sse, alphaLo, alphaHi, 1e-10, 0)
	gamma, p0, s := fitLinear(t, alpha)
	m := Model{Gamma: gamma, Alpha: alpha, P0: p0}
	if err := validateFit(m); err != nil {
		return FitResult{}, err
	}
	return FitResult{
		Model: m,
		RMSE:  math.Sqrt(s / float64(t.Len())),
	}, nil
}

// FitDefault fits with the conventional DVFS exponent range α ∈ [2, 3.5].
func FitDefault(t *Table) (FitResult, error) { return Fit(t, 2, 3.5) }

// validateFit relaxes Model.Validate for fitted models: a fitted alpha
// may be fractional but must still be >= 2 for the downstream convexity
// arguments; gamma must be positive.
func validateFit(m Model) error {
	if !(m.Gamma > 0) {
		return fmt.Errorf("power: fit produced non-positive gamma %g", m.Gamma)
	}
	if m.Alpha < 2 {
		return fmt.Errorf("power: fit produced alpha %g < 2; widen the range or check the table", m.Alpha)
	}
	if m.P0 < 0 {
		return fmt.Errorf("power: fit produced negative static power %g", m.P0)
	}
	return nil
}

// fitLinear solves min_{γ,p0} Σ (γ·f_k^α + p0 − p_k)² exactly and returns
// the optimum together with the sum of squared errors. When the
// unconstrained intercept is negative it refits with p0 = 0.
func fitLinear(t *Table, alpha float64) (gamma, p0, sse float64) {
	n := float64(t.Len())
	var sx, sy, sxx, sxy float64
	for i := 0; i < t.Len(); i++ {
		l := t.Level(i)
		x := math.Pow(l.Frequency, alpha)
		y := l.Power
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	det := n*sxx - sx*sx
	if det <= 0 {
		// Degenerate design (all frequencies equal) — callers reject this
		// earlier via NewTable's strict monotonicity, so just fit γ alone.
		gamma = sxy / sxx
		p0 = 0
	} else {
		gamma = (n*sxy - sx*sy) / det
		p0 = (sy - gamma*sx) / n
		if p0 < 0 {
			p0 = 0
			gamma = sxy / sxx
		}
	}
	for i := 0; i < t.Len(); i++ {
		l := t.Level(i)
		r := gamma*math.Pow(l.Frequency, alpha) + p0 - l.Power
		sse += r * r
	}
	return gamma, p0, sse
}
