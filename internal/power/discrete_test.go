package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewTableValidation(t *testing.T) {
	if _, err := NewTable(); err == nil {
		t.Error("empty table should fail")
	}
	if _, err := NewTable(Level{Frequency: 0, Power: 10}); err == nil {
		t.Error("zero frequency should fail")
	}
	if _, err := NewTable(Level{Frequency: 100, Power: 0}); err == nil {
		t.Error("zero power should fail")
	}
	if _, err := NewTable(
		Level{Frequency: 100, Power: 10},
		Level{Frequency: 100, Power: 20},
	); err == nil {
		t.Error("duplicate frequency should fail")
	}
	if _, err := NewTable(
		Level{Frequency: 100, Power: 30},
		Level{Frequency: 200, Power: 20},
	); err == nil {
		t.Error("decreasing power should fail")
	}
}

func TestNewTableSorts(t *testing.T) {
	tab, err := NewTable(
		Level{Frequency: 400, Power: 170},
		Level{Frequency: 150, Power: 80},
	)
	if err != nil {
		t.Fatal(err)
	}
	if tab.MinFrequency() != 150 || tab.MaxFrequency() != 400 {
		t.Errorf("min/max = %g/%g", tab.MinFrequency(), tab.MaxFrequency())
	}
}

func TestIntelXScaleTable(t *testing.T) {
	tab := IntelXScale()
	if tab.Len() != 5 {
		t.Fatalf("XScale has %d levels", tab.Len())
	}
	wantF := []float64{150, 400, 600, 800, 1000}
	wantP := []float64{80, 170, 400, 900, 1600}
	for i, l := range tab.Levels() {
		if l.Frequency != wantF[i] || l.Power != wantP[i] {
			t.Errorf("level %d = %+v, want (%g, %g)", i, l, wantF[i], wantP[i])
		}
	}
}

func TestRoundUp(t *testing.T) {
	tab := IntelXScale()
	cases := []struct {
		f    float64
		want float64
		ok   bool
	}{
		{100, 150, true},
		{150, 150, true},
		{151, 400, true},
		{400, 400, true},
		{999, 1000, true},
		{1000, 1000, true},
		{1000.1, 0, false},
	}
	for _, c := range cases {
		l, ok := tab.RoundUp(c.f)
		if ok != c.ok {
			t.Errorf("RoundUp(%g) ok=%v, want %v", c.f, ok, c.ok)
			continue
		}
		if ok && l.Frequency != c.want {
			t.Errorf("RoundUp(%g) = %g, want %g", c.f, l.Frequency, c.want)
		}
	}
}

func TestRoundUpNeverBelow(t *testing.T) {
	tab := IntelXScale()
	f := func(raw float64) bool {
		freq := math.Mod(math.Abs(raw), 1000)
		if freq == 0 {
			freq = 1
		}
		l, ok := tab.RoundUp(freq)
		return ok && l.Frequency >= freq
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestRoundNearest(t *testing.T) {
	tab := IntelXScale()
	cases := []struct {
		f    float64
		want float64
	}{
		{10, 150},
		{270, 150}, // 120 below 400 vs 125 above 150... |270-150|=120, |270-400|=130 → 150
		{280, 400}, // |280-150|=130 > |280-400|=120 → 400
		{500, 600}, // tie goes up: |500-400| = |500-600| = 100
		{2000, 1000},
	}
	for _, c := range cases {
		if got := tab.RoundNearest(c.f); got.Frequency != c.want {
			t.Errorf("RoundNearest(%g) = %g, want %g", c.f, got.Frequency, c.want)
		}
	}
}

func TestTablePowerLookup(t *testing.T) {
	tab := IntelXScale()
	p, err := tab.Power(600)
	if err != nil || p != 400 {
		t.Errorf("Power(600) = %g, %v", p, err)
	}
	if _, err := tab.Power(601); err == nil {
		t.Error("non-operating-point lookup should fail")
	}
}

func TestLevelEnergy(t *testing.T) {
	l := Level{Frequency: 400, Power: 170}
	// 4000 Mcycles at 400 MHz takes 10 s → 1700 mJ (mW·s).
	if got := l.Energy(4000); math.Abs(got-1700) > 1e-9 {
		t.Errorf("Energy = %g, want 1700", got)
	}
	if l.Energy(0) != 0 {
		t.Error("zero work should cost zero energy")
	}
}

func TestFitXScale(t *testing.T) {
	res, err := FitDefault(IntelXScale())
	if err != nil {
		t.Fatal(err)
	}
	m := res.Model
	// The paper reports p(f) = 3.855e-6·f^2.867 + 63.58 for this table
	// (mW, MHz). Our least-squares fit should land in the same
	// neighbourhood.
	if m.Alpha < 2.5 || m.Alpha > 3.2 {
		t.Errorf("fitted alpha = %g, expected near 2.867", m.Alpha)
	}
	if m.P0 < 20 || m.P0 > 110 {
		t.Errorf("fitted p0 = %g, expected near 63.58", m.P0)
	}
	// The fitted curve must track the table closely (RMSE within a few
	// percent of the largest power).
	if res.RMSE > 40 {
		t.Errorf("RMSE = %g mW too large", res.RMSE)
	}
	// Check predictions at the endpoints.
	if p := m.Power(1000); math.Abs(p-1600) > 120 {
		t.Errorf("fit at 1000 MHz: %g mW, want ≈1600", p)
	}
	if p := m.Power(150); math.Abs(p-80) > 40 {
		t.Errorf("fit at 150 MHz: %g mW, want ≈80", p)
	}
}

func TestFitRecoversExactModel(t *testing.T) {
	// Build a synthetic table from a known model; the fitter must recover
	// it almost exactly since the data is noise-free.
	truth := Model{Gamma: 2e-7, Alpha: 2.9, P0: 50}
	var levels []Level
	for _, f := range []float64{100, 250, 500, 750, 1000} {
		levels = append(levels, Level{Frequency: f, Power: truth.Power(f)})
	}
	tab := MustNewTable(levels...)
	res, err := FitDefault(tab)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Model.Alpha-truth.Alpha) > 1e-3 {
		t.Errorf("alpha = %g, want %g", res.Model.Alpha, truth.Alpha)
	}
	if math.Abs(res.Model.P0-truth.P0) > 0.5 {
		t.Errorf("p0 = %g, want %g", res.Model.P0, truth.P0)
	}
	if res.RMSE > 1e-3 {
		t.Errorf("RMSE = %g on noise-free data", res.RMSE)
	}
}

func TestFitErrors(t *testing.T) {
	small := MustNewTable(
		Level{Frequency: 100, Power: 10},
		Level{Frequency: 200, Power: 40},
	)
	if _, err := FitDefault(small); err == nil {
		t.Error("fit with 2 points should fail")
	}
	if _, err := Fit(IntelXScale(), 3, 2); err == nil {
		t.Error("inverted alpha range should fail")
	}
}

func BenchmarkFitXScale(b *testing.B) {
	tab := IntelXScale()
	for i := 0; i < b.N; i++ {
		if _, err := FitDefault(tab); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRoundUp(b *testing.B) {
	tab := IntelXScale()
	for i := 0; i < b.N; i++ {
		tab.RoundUp(float64(i%1100) + 0.5)
	}
}
