package power

import (
	"math"
	"testing"
	"testing/quick"
)

func TestModelValidate(t *testing.T) {
	cases := []struct {
		name string
		m    Model
		ok   bool
	}{
		{"paper default", Unit(3, 0.01), true},
		{"alpha 2", Unit(2, 0), true},
		{"alpha below 2", Unit(1.5, 0), false},
		{"zero gamma", Model{Gamma: 0, Alpha: 3, P0: 0}, false},
		{"negative p0", Unit(3, -0.1), false},
		{"nan p0", Unit(3, math.NaN()), false},
	}
	for _, c := range cases {
		if err := c.m.Validate(); (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestPowerValues(t *testing.T) {
	m := Unit(3, 0.01)
	if got := m.Power(1); math.Abs(got-1.01) > 1e-12 {
		t.Errorf("p(1) = %g, want 1.01", got)
	}
	if got := m.Power(2); math.Abs(got-8.01) > 1e-12 {
		t.Errorf("p(2) = %g, want 8.01", got)
	}
	if got := m.Power(0); got != 0 {
		t.Errorf("p(0) = %g, want 0 (sleep mode)", got)
	}
}

func TestPowerNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("negative frequency should panic")
		}
	}()
	Unit(3, 0).Power(-1)
}

func TestEnergyConsistency(t *testing.T) {
	m := Unit(3, 0.25)
	// Executing work w at frequency f takes w/f time; both accountings
	// must agree.
	w, f := 6.0, 1.5
	e1 := m.Energy(w, f)
	e2 := m.EnergyForTime(w/f, f)
	if math.Abs(e1-e2) > 1e-12 {
		t.Errorf("Energy=%g, EnergyForTime=%g", e1, e2)
	}
}

func TestEnergyZeroWork(t *testing.T) {
	m := Unit(3, 0.25)
	if m.Energy(0, 1) != 0 {
		t.Error("zero work has zero energy")
	}
	if m.EnergyForTime(0, 1) != 0 {
		t.Error("zero time has zero energy")
	}
	if m.EnergyForTime(5, 0) != 0 {
		t.Error("zero frequency means sleeping")
	}
}

func TestFig3TruncationExample(t *testing.T) {
	// Paper Fig. 3: p(f) = f^2 + 0.25, one task with C = 2 and 5 time
	// units available. Using all 5 units (f = 0.4) costs 2.05; using only
	// 4 units (f = 0.5) costs 2.00.
	m := Unit(2, 0.25)
	if got := m.Energy(2, 0.4); math.Abs(got-2.05) > 1e-12 {
		t.Errorf("E at f=0.4: %g, want 2.05", got)
	}
	if got := m.Energy(2, 0.5); math.Abs(got-2.00) > 1e-12 {
		t.Errorf("E at f=0.5: %g, want 2.00", got)
	}
	// 0.5 is exactly the critical frequency: f* = (0.25/(2-1))^(1/2).
	if got := m.CriticalFrequency(); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("f* = %g, want 0.5", got)
	}
	// BestFrequency with 5 units available picks f* = 0.5, not 0.4.
	if got := m.BestFrequency(2, 5); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("BestFrequency = %g, want 0.5", got)
	}
	if got := m.TaskEnergy(2, 5); math.Abs(got-2.00) > 1e-12 {
		t.Errorf("TaskEnergy = %g, want 2.00", got)
	}
}

func TestCriticalFrequencyZeroStatic(t *testing.T) {
	m := Unit(3, 0)
	if got := m.CriticalFrequency(); got != 0 {
		t.Errorf("f* with p0=0 should be 0, got %g", got)
	}
	// With p0 = 0 the best frequency always stretches to the deadline.
	if got := m.BestFrequency(4, 8); got != 0.5 {
		t.Errorf("BestFrequency = %g, want 0.5", got)
	}
}

func TestCriticalFrequencyFormula(t *testing.T) {
	f := func(p0raw, alphaRaw float64) bool {
		p0 := 0.01 + math.Mod(math.Abs(p0raw), 1)
		alpha := 2 + math.Mod(math.Abs(alphaRaw), 1.5)
		m := Unit(alpha, p0)
		fs := m.CriticalFrequency()
		// At f*, d/df of EnergyRate must vanish:
		// (α-1)f^(α-2) − p0/f² = 0.
		deriv := (alpha-1)*math.Pow(fs, alpha-2) - p0/(fs*fs)
		return math.Abs(deriv) < 1e-6*math.Max(1, p0/(fs*fs))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestBestFrequencyMonotone(t *testing.T) {
	// More available time never increases the best frequency, and energy
	// never increases with more time.
	m := Unit(3, 0.1)
	prevF, prevE := math.Inf(1), math.Inf(1)
	for avail := 0.5; avail < 50; avail *= 1.5 {
		f := m.BestFrequency(10, avail)
		e := m.TaskEnergy(10, avail)
		if f > prevF+1e-12 {
			t.Errorf("BestFrequency increased with more time at avail=%g", avail)
		}
		if e > prevE+1e-12 {
			t.Errorf("TaskEnergy increased with more time at avail=%g", avail)
		}
		prevF, prevE = f, e
	}
}

func TestBestFrequencyAtLeastIntensity(t *testing.T) {
	f := func(w, avail, p0 float64) bool {
		w = 0.1 + math.Mod(math.Abs(w), 100)
		avail = 0.1 + math.Mod(math.Abs(avail), 100)
		p0 = math.Mod(math.Abs(p0), 0.5)
		m := Unit(3, p0)
		bf := m.BestFrequency(w, avail)
		return bf >= w/avail-1e-12 && bf >= m.CriticalFrequency()-1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestEnergyRateMinimizedAtCritical(t *testing.T) {
	m := Unit(3, 0.2)
	fs := m.CriticalFrequency()
	base := m.EnergyRate(fs)
	for _, d := range []float64{-0.05, -0.01, 0.01, 0.05, 0.5} {
		f := fs + d
		if f <= 0 {
			continue
		}
		if m.EnergyRate(f) < base-1e-12 {
			t.Errorf("EnergyRate(%g)=%g below EnergyRate(f*)=%g", f, m.EnergyRate(f), base)
		}
	}
}

func TestStringer(t *testing.T) {
	if got := Unit(3, 0.01).String(); got != "p(f) = f^3 + 0.01" {
		t.Errorf("String() = %q", got)
	}
	m := Model{Gamma: 3.855e-7, Alpha: 2.867, P0: 63.58}
	if got := m.String(); got == "" {
		t.Error("String() empty for fitted model")
	}
}
