package partition

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/alloc"
	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/opt"
	"repro/internal/power"
	"repro/internal/task"
)

func TestAssignCoversAllTasks(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	ts := task.MustGenerate(rng, task.PaperDefaults(20))
	a, err := Assign(ts, 4)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, len(ts))
	for k, ids := range a.PerCore {
		for _, id := range ids {
			if seen[id] {
				t.Fatalf("task %d assigned twice", id)
			}
			seen[id] = true
			if a.CoreOf[id] != k {
				t.Fatalf("CoreOf[%d] = %d, but listed on core %d", id, a.CoreOf[id], k)
			}
		}
	}
	for id, s := range seen {
		if !s {
			t.Errorf("task %d unassigned", id)
		}
	}
}

func TestAssignBalances(t *testing.T) {
	// Four identical heavy tasks on four cores must go one per core.
	ts := task.MustNew(
		[3]float64{0, 8, 10},
		[3]float64{0, 8, 10},
		[3]float64{0, 8, 10},
		[3]float64{0, 8, 10},
	)
	a, err := Assign(ts, 4)
	if err != nil {
		t.Fatal(err)
	}
	for k, ids := range a.PerCore {
		if len(ids) != 1 {
			t.Errorf("core %d has %d tasks, want 1 (%v)", k, len(ids), a.PerCore)
		}
	}
}

func TestScheduleFeasibleAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 15; trial++ {
		ts := task.MustGenerate(rng, task.PaperDefaults(15))
		m := 2 + rng.Intn(4)
		pm := power.Unit(3, rng.Float64()*0.2)
		sched, energy, err := Schedule(ts, m, pm)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if energy <= 0 {
			t.Errorf("trial %d: energy %g", trial, energy)
		}
		done := sched.CompletedWork()
		for _, tk := range ts {
			if done[tk.ID] < tk.Work*(1-1e-6) {
				t.Errorf("trial %d: task %d completed %g of %g", trial, tk.ID, done[tk.ID], tk.Work)
			}
		}
		if vs := check.Validate(sched, ts, m, pm); len(vs) > 0 {
			t.Errorf("trial %d: partitioned schedule fails validation: %v", trial, vs)
		}
	}
}

func TestNoMigrationInPartitionedSchedule(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ts := task.MustGenerate(rng, task.PaperDefaults(12))
	sched, _, err := Schedule(ts, 3, power.Unit(3, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	coreOf := map[int]int{}
	for _, seg := range sched.Segments {
		if prev, ok := coreOf[seg.Task]; ok && prev != seg.Core {
			t.Fatalf("task %d migrated from core %d to %d", seg.Task, prev, seg.Core)
		}
		coreOf[seg.Task] = seg.Core
	}
}

func TestPartitionedNeverBeatsMigratoryOptimum(t *testing.T) {
	// Partitioned scheduling is a restriction of migratory scheduling, so
	// its energy is lower-bounded by the convex optimum.
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 8; trial++ {
		ts := task.MustGenerate(rng, task.PaperDefaults(10))
		pm := power.Unit(3, 0.05)
		_, energy, err := Schedule(ts, 3, pm)
		if err != nil {
			t.Fatal(err)
		}
		d := interval.MustDecompose(ts, 1e-9)
		sol := opt.MustSolve(d, 3, pm, opt.Options{MaxIterations: 3000, RelGap: 1e-6})
		if energy < sol.Energy-sol.Gap-1e-6 {
			t.Errorf("trial %d: partitioned %.6f below migratory optimum %.6f",
				trial, energy, sol.Energy)
		}
	}
}

func TestCriticalFrequencyFloorApplied(t *testing.T) {
	// One lazy task with an enormous window: plain YDS would run at a
	// tiny speed; the floor must raise it to f*.
	ts := task.MustNew([3]float64{0, 1, 1000})
	pm := power.Unit(2, 0.25) // f* = 0.5
	sched, energy, err := Schedule(ts, 1, pm)
	if err != nil {
		t.Fatal(err)
	}
	for _, seg := range sched.Segments {
		if seg.Frequency < 0.5-1e-12 {
			t.Errorf("segment below critical frequency: %v", seg)
		}
	}
	// Energy = 1·(0.5 + 0.25/0.5) = 1.0.
	if math.Abs(energy-1.0) > 1e-9 {
		t.Errorf("energy = %g, want 1.0", energy)
	}
}

func TestSingleCoreEqualsYDSWhenNoStaticPower(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	ts := task.MustGenerate(rng, task.PaperDefaults(8))
	pm := power.Unit(3, 0)
	_, energy, err := Schedule(ts, 1, pm)
	if err != nil {
		t.Fatal(err)
	}
	d := interval.MustDecompose(ts, 1e-9)
	sol := opt.MustSolve(d, 1, pm, opt.Options{MaxIterations: 20000, RelGap: 1e-9})
	if math.Abs(energy-sol.Energy) > 1e-3*sol.Energy+sol.Gap {
		t.Errorf("single-core partitioned %.6f != uniprocessor optimum %.6f", energy, sol.Energy)
	}
}

func TestMigrationUsuallyHelps(t *testing.T) {
	// Across random instances the migratory F2 heuristic should beat the
	// partitioned baseline on average (the point of the comparison).
	rng := rand.New(rand.NewSource(55))
	var partTotal, migTotal float64
	for trial := 0; trial < 12; trial++ {
		ts := task.MustGenerate(rng, task.PaperDefaults(15))
		pm := power.Unit(3, 0.1)
		_, pe, err := Schedule(ts, 4, pm)
		if err != nil {
			t.Fatal(err)
		}
		res := core.MustSchedule(ts, 4, pm, alloc.DER, core.Options{Tolerance: 1e-9})
		partTotal += pe
		migTotal += res.FinalEnergy
	}
	if migTotal > partTotal*1.02 {
		t.Errorf("migratory F2 total %.4f much worse than partitioned %.4f", migTotal, partTotal)
	}
}

func TestInputValidation(t *testing.T) {
	ts := task.Fig1Example()
	if _, err := Assign(ts, 0); err == nil {
		t.Error("zero cores should fail")
	}
	if _, err := Assign(task.Set{}, 2); err == nil {
		t.Error("empty set should fail")
	}
	if _, _, err := Schedule(ts, 2, power.Unit(1, 0)); err == nil {
		t.Error("invalid model should fail")
	}
}

func BenchmarkPartitionSchedule(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	ts := task.MustGenerate(rng, task.PaperDefaults(20))
	pm := power.Unit(3, 0.1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Schedule(ts, 4, pm); err != nil {
			b.Fatal(err)
		}
	}
}
