// Package partition implements a non-migratory baseline scheduler:
// tasks are statically assigned to cores (first-fit-decreasing on
// intensity, balancing each core's minimal feasible speed) and each core
// independently runs the YDS optimal uniprocessor algorithm, with
// frequencies floored at the critical frequency when static power makes
// full stretching wasteful.
//
// The paper's algorithms allow migration; this baseline quantifies what
// that freedom buys. Partitioning is how many practical systems deploy
// DVFS scheduling (per-core runqueues), so the comparison is of direct
// practical interest.
package partition

import (
	"fmt"
	"sort"

	"repro/internal/feas"
	"repro/internal/interval"
	"repro/internal/power"
	"repro/internal/schedule"
	"repro/internal/task"
	"repro/internal/yds"
)

// Assignment maps tasks to cores.
type Assignment struct {
	// CoreOf[i] is the core of task i.
	CoreOf []int
	// PerCore[k] lists the original task IDs assigned to core k.
	PerCore [][]int
	// PeakSpeed[k] is the minimal feasible uniform speed of core k's
	// subset (the balancing objective).
	PeakSpeed []float64
}

// Assign distributes tasks over m cores with a greedy
// first-fit-decreasing heuristic: tasks in decreasing intensity order,
// each placed on the core whose post-placement minimal feasible speed is
// smallest. This balances the per-core speed requirement, the quantity
// that drives both deadline feasibility and energy.
func Assign(ts task.Set, m int) (*Assignment, error) {
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	if m <= 0 {
		return nil, fmt.Errorf("partition: need at least one core, have %d", m)
	}
	order := make([]int, len(ts))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return ts[order[a]].Intensity() > ts[order[b]].Intensity()
	})
	a := &Assignment{
		CoreOf:    make([]int, len(ts)),
		PerCore:   make([][]int, m),
		PeakSpeed: make([]float64, m),
	}
	coreSets := make([]task.Set, m)
	for _, id := range order {
		best := -1
		bestPeak := 0.0
		for k := 0; k < m; k++ {
			cand := append(coreSets[k].Clone(), ts[id])
			cand.Renumber()
			d, err := interval.Decompose(cand, 1e-9)
			if err != nil {
				return nil, err
			}
			peak := feas.LowerBound(d, 1)
			if best == -1 || peak < bestPeak {
				best, bestPeak = k, peak
			}
		}
		coreSets[best] = append(coreSets[best], ts[id])
		coreSets[best].Renumber()
		a.CoreOf[id] = best
		a.PerCore[best] = append(a.PerCore[best], id)
		a.PeakSpeed[best] = bestPeak
	}
	return a, nil
}

// Schedule builds the full partitioned schedule: per-core YDS with the
// critical-frequency floor, mapped back to original task IDs and core
// indices. Returns the realized schedule and its energy under the model.
func Schedule(ts task.Set, m int, pm power.Model) (*schedule.Schedule, float64, error) {
	if err := pm.Validate(); err != nil {
		return nil, 0, err
	}
	asg, err := Assign(ts, m)
	if err != nil {
		return nil, 0, err
	}
	out := schedule.New(ts, m)
	fstar := pm.CriticalFrequency()
	for k, ids := range asg.PerCore {
		if len(ids) == 0 {
			continue
		}
		sub := make(task.Set, len(ids))
		for i, id := range ids {
			sub[i] = ts[id]
			sub[i].ID = i
		}
		coreSched, _, err := yds.Schedule(sub)
		if err != nil {
			return nil, 0, fmt.Errorf("partition: core %d: %w", k, err)
		}
		for _, seg := range coreSched.Segments {
			f := seg.Frequency
			end := seg.End
			if f < fstar {
				// Running below the critical frequency wastes static
				// energy; shrink the segment to run at f* instead. The
				// shrunk segment stays inside its original slot, so no
				// collision can appear.
				work := seg.Work()
				f = fstar
				end = seg.Start + work/f
			}
			out.Add(schedule.Segment{
				Task:      ids[seg.Task],
				Core:      k,
				Start:     seg.Start,
				End:       end,
				Frequency: f,
			})
		}
	}
	if errs := out.Validate(1e-6, true); len(errs) > 0 {
		return nil, 0, fmt.Errorf("partition: realized schedule infeasible: %v", errs[0])
	}
	return out, out.Energy(pm), nil
}
