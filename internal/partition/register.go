package partition

import (
	"context"

	"repro/internal/check"
	"repro/internal/power"
	"repro/internal/schedule"
	"repro/internal/task"
)

// The non-migratory baseline self-registers with the universal
// cross-check.
func init() {
	check.Register(check.Entry{
		Name: "Partitioned",
		Run: func(ctx context.Context, ts task.Set, m int, pm power.Model) (*schedule.Schedule, float64, error) {
			if err := ctx.Err(); err != nil {
				return nil, 0, err
			}
			sched, energy, err := Schedule(ts, m, pm)
			if err != nil {
				return nil, 0, err
			}
			return sched, energy, nil
		},
	})
}
