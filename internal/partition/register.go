package partition

import (
	"repro/internal/check"
	"repro/internal/power"
	"repro/internal/schedule"
	"repro/internal/task"
)

// The non-migratory baseline self-registers with the universal
// cross-check.
func init() {
	check.Register(check.Entry{
		Name: "Partitioned",
		Run: func(ts task.Set, m int, pm power.Model) (*schedule.Schedule, float64, error) {
			sched, energy, err := Schedule(ts, m, pm)
			if err != nil {
				return nil, 0, err
			}
			return sched, energy, nil
		},
	})
}
