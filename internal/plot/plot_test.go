package plot

import (
	"math"
	"strings"
	"testing"

	"repro/internal/experiments"
	"repro/internal/stats"
)

func makeResult() *experiments.Result {
	r := &experiments.Result{
		ID: "test", Title: "demo", XLabel: "p0",
		SeriesOrder: []string{"F1", "F2"},
	}
	for i := 0; i < 6; i++ {
		x := float64(i) * 0.04
		r.Points = append(r.Points, experiments.Point{
			X:     x,
			Label: "",
			Series: map[string]stats.Summary{
				"F1": {Mean: 1.5 - 0.05*float64(i)},
				"F2": {Mean: 1.08 - 0.01*float64(i)},
			},
		})
	}
	return r
}

func TestRenderContainsFrameAndLegend(t *testing.T) {
	out := Render(makeResult(), Options{})
	for _, frag := range []string{"test — demo", "o=F1", "x=F2", "p0", "+--"} {
		if !strings.Contains(out, frag) {
			t.Errorf("render missing %q:\n%s", frag, out)
		}
	}
	// Both glyphs plotted at least once per point.
	if strings.Count(out, "o") < 3 || strings.Count(out, "x") < 3 {
		t.Errorf("too few marks:\n%s", out)
	}
}

func TestRenderEmpty(t *testing.T) {
	r := &experiments.Result{ID: "e", SeriesOrder: []string{"A"}}
	if out := Render(r, Options{}); !strings.Contains(out, "no data") {
		t.Errorf("expected no-data placeholder, got %q", out)
	}
}

func TestRenderSkipsNaN(t *testing.T) {
	r := makeResult()
	r.Points[2].Series["F1"] = stats.Summary{Mean: math.NaN()}
	out := Render(r, Options{})
	if strings.Contains(out, "NaN") {
		t.Errorf("NaN leaked into render:\n%s", out)
	}
}

func TestRenderRespectsDimensions(t *testing.T) {
	out := Render(makeResult(), Options{Width: 30, Height: 8})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// title + 8 canvas rows + frame + x labels + legend = 12.
	if len(lines) != 12 {
		t.Errorf("lines = %d:\n%s", len(lines), out)
	}
	for _, l := range lines[1:9] {
		if !strings.Contains(l, "|") {
			t.Errorf("canvas row missing frame: %q", l)
		}
	}
}

func TestRenderConstantSeries(t *testing.T) {
	r := &experiments.Result{
		ID: "const", Title: "flat", XLabel: "x",
		SeriesOrder: []string{"A"},
	}
	for i := 0; i < 4; i++ {
		r.Points = append(r.Points, experiments.Point{
			X:      float64(i),
			Series: map[string]stats.Summary{"A": {Mean: 2}},
		})
	}
	out := Render(r, Options{})
	if !strings.Contains(out, "o=A") {
		t.Errorf("flat series should render:\n%s", out)
	}
}

func TestGlyphCycling(t *testing.T) {
	r := &experiments.Result{ID: "many", XLabel: "x"}
	for i := 0; i < 10; i++ {
		name := strings.Repeat("s", i+1)
		r.SeriesOrder = append(r.SeriesOrder, name)
	}
	p := experiments.Point{X: 1, Series: map[string]stats.Summary{}}
	for _, s := range r.SeriesOrder {
		p.Series[s] = stats.Summary{Mean: 1}
	}
	r.Points = []experiments.Point{p}
	out := Render(r, Options{})
	if out == "" {
		t.Error("empty render with many series")
	}
}
