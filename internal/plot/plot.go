// Package plot renders experiment results as terminal line charts so the
// paper's figures can be eyeballed without leaving the shell: one glyph
// per series, a framed canvas with y-axis labels, and a legend. The
// renderer is deliberately simple — nearest-cell rasterization of series
// points connected by vertical interpolation — but faithful enough to
// compare curve shapes against the paper.
package plot

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/experiments"
)

// Options controls the canvas.
type Options struct {
	Width  int // columns of the plotting area (default 60)
	Height int // rows of the plotting area (default 16)
}

func (o Options) withDefaults() Options {
	if o.Width < 16 {
		o.Width = 60
	}
	if o.Height < 5 {
		o.Height = 16
	}
	return o
}

// seriesGlyphs assigns one mark per series, in order.
var seriesGlyphs = []rune{'o', 'x', '+', '*', '#', '@', '%', '&'}

// Render draws all series of the result over its points' X values.
// Points with NaN means are skipped.
func Render(r *experiments.Result, opts Options) string {
	opts = opts.withDefaults()
	if len(r.Points) == 0 {
		return "(no data)\n"
	}
	// Collect coordinates.
	type curve struct {
		name  string
		glyph rune
		xs    []float64
		ys    []float64
	}
	var curves []curve
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	for si, s := range r.SeriesOrder {
		c := curve{name: s, glyph: seriesGlyphs[si%len(seriesGlyphs)]}
		for pi, p := range r.Points {
			sum, ok := p.Series[s]
			if !ok || math.IsNaN(sum.Mean) {
				continue
			}
			x := p.X
			if x == 0 && pi > 0 && r.Points[pi-1].X == 0 {
				x = float64(pi) // fall back to index when X is unset
			}
			c.xs = append(c.xs, x)
			c.ys = append(c.ys, sum.Mean)
			minX, maxX = math.Min(minX, x), math.Max(maxX, x)
			minY, maxY = math.Min(minY, sum.Mean), math.Max(maxY, sum.Mean)
		}
		if len(c.xs) > 0 {
			curves = append(curves, c)
		}
	}
	if len(curves) == 0 {
		return "(no data)\n"
	}
	if maxX == minX {
		maxX = minX + 1
	}
	if maxY == minY {
		maxY = minY + 1
	}
	// Pad the y-range slightly so extremes are visible.
	pad := (maxY - minY) * 0.05
	minY -= pad
	maxY += pad

	grid := make([][]rune, opts.Height)
	for i := range grid {
		grid[i] = []rune(strings.Repeat(" ", opts.Width))
	}
	toCol := func(x float64) int {
		c := int(math.Round((x - minX) / (maxX - minX) * float64(opts.Width-1)))
		return clampInt(c, 0, opts.Width-1)
	}
	toRow := func(y float64) int {
		rr := int(math.Round((maxY - y) / (maxY - minY) * float64(opts.Height-1)))
		return clampInt(rr, 0, opts.Height-1)
	}
	for _, c := range curves {
		prevCol, prevRow := -1, -1
		for i := range c.xs {
			col, row := toCol(c.xs[i]), toRow(c.ys[i])
			grid[row][col] = c.glyph
			// Connect to the previous point with a sparse vertical trail
			// when the jump is large, to keep curves readable.
			if prevCol >= 0 && col > prevCol {
				for cc := prevCol + 1; cc < col; cc++ {
					t := float64(cc-prevCol) / float64(col-prevCol)
					rr := int(math.Round(float64(prevRow) + t*float64(row-prevRow)))
					rr = clampInt(rr, 0, opts.Height-1)
					if grid[rr][cc] == ' ' {
						grid[rr][cc] = '·'
					}
				}
			}
			prevCol, prevRow = col, row
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", r.ID, r.Title)
	for i, row := range grid {
		yVal := maxY - (maxY-minY)*float64(i)/float64(opts.Height-1)
		fmt.Fprintf(&b, "%9.4f |%s|\n", yVal, string(row))
	}
	fmt.Fprintf(&b, "%9s +%s+\n", "", strings.Repeat("-", opts.Width))
	fmt.Fprintf(&b, "%9s  %-*.4g%*.4g\n", r.XLabel, opts.Width/2, minX, opts.Width-opts.Width/2, maxX)
	b.WriteString("          ")
	for _, c := range curves {
		fmt.Fprintf(&b, " %c=%s", c.glyph, c.name)
	}
	b.WriteString("\n")
	return b.String()
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
