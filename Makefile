GO ?= go

.PHONY: all vet build test race fuzz-smoke chaos vulncheck ci serve loadtest bench bench-smoke clean

all: build

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short differential-fuzz pass: every registered scheduler against the
# independent oracles on randomized instances. The checked-in corpus
# under testdata/fuzz/ also replays during plain `make test`.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz=FuzzSchedulers -fuzztime=10s .

# Fault-injection soak: schedd under every injection point, validating
# client, zero crashes and zero invalid schedules tolerated. Tune with
# CHAOS_DURATION / CHAOS_SEED / CHAOS_BUILDFLAGS (e.g. -race).
chaos:
	sh scripts/chaos.sh

# Known-vulnerability scan, skipped quietly where the tool isn't
# installed (it needs network access to fetch the vuln DB).
vulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "vulncheck: govulncheck not installed, skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

ci: vet build test race fuzz-smoke vulncheck

# Run the HTTP scheduling daemon on :8080 (override: make serve ADDR=:9090).
ADDR ?= :8080
serve:
	$(GO) run ./cmd/schedd -addr $(ADDR)

# Drive a closed loop against a running daemon and validate every response.
LOAD_ADDR ?= http://localhost:8080
loadtest:
	$(GO) run ./cmd/schedload -addr $(LOAD_ADDR) -duration 10s

# Run the fixed solver benchmark matrix and refresh the trajectory file,
# comparing against the committed previous run
# (override: make bench BENCH_OUT=BENCH_pr5.json BENCH_PREV=BENCH_pr4.json).
BENCH_OUT ?= BENCH_pr4.json
BENCH_PREV ?=
bench:
	$(GO) run ./cmd/schedbench -out $(BENCH_OUT) $(if $(BENCH_PREV),-prev $(BENCH_PREV))

# Small-case benchmark smoke for CI: exercises the matrix end to end
# without meaningful machine-time cost.
bench-smoke:
	$(GO) run ./cmd/schedbench -quick -out bench-smoke.json
	cat bench-smoke.json

clean:
	$(GO) clean ./...
