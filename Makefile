GO ?= go

.PHONY: all vet build test race fuzz-smoke chaos dispatch-soak dispatch-soak-smoke cluster-smoke crash-smoke vulncheck ci conform conform-smoke cover serve loadtest bench bench-smoke clean

all: build

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short differential-fuzz pass: every registered scheduler against the
# independent oracles on randomized instances, plus the journal replay
# engine against arbitrary log bytes. The checked-in corpus under
# testdata/fuzz/ also replays during plain `make test`.
# -fuzzminimizetime=0x skips corpus minimization, which dominates wall
# clock on short runs without improving coverage.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz=FuzzSchedulers -fuzztime=10s .
	$(GO) test -run '^$$' -fuzz=FuzzJournalReplay -fuzztime=10s -fuzzminimizetime=0x ./internal/journal

# Fault-injection soak: schedd under every injection point, validating
# client, zero crashes and zero invalid schedules tolerated. Tune with
# CHAOS_DURATION / CHAOS_SEED / CHAOS_BUILDFLAGS (e.g. -race).
chaos:
	sh scripts/chaos.sh

# Streaming-session soak: many concurrent /v1/sessions lifecycles with
# Poisson arrivals, client-side validation of every committed prefix,
# competitive-ratio reporting, and a graceful-drain check with a live
# SSE subscriber. Tune with SOAK_SESSIONS / SOAK_BATCHES / SOAK_SEED /
# SOAK_BUILDFLAGS (e.g. -race).
dispatch-soak:
	sh scripts/dispatch_soak.sh

# Small PR-time variant of the same soak under the race detector.
dispatch-soak-smoke:
	SOAK_SESSIONS=8 SOAK_BATCHES=8 SOAK_BUILDFLAGS=-race sh scripts/dispatch_soak.sh

# Cluster smoke: 3 schedd backends behind a schedrouter, >= 50
# concurrent streaming sessions through the router, one backend
# SIGKILLed mid-run. All sessions must finish via snapshot/restore
# migration with 0 validator failures and 0 SSE sequence gaps.
cluster-smoke:
	sh scripts/cluster_smoke.sh

# Crash-recovery smoke: one journaled schedd (-data-dir), >= 25
# streaming sessions with reconnecting SSE subscribers, the daemon
# SIGKILLed mid-run and restarted over the same data dir. The committed
# prefixes must survive verbatim (schedjournal verify against the
# post-crash baseline), every session must finish with 0 validator
# failures, and the deduped event streams must stay gapless.
crash-smoke:
	sh scripts/crash_smoke.sh

# Known-vulnerability scan, skipped quietly where the tool isn't
# installed (it needs network access to fetch the vuln DB).
vulncheck:
	@if command -v govulncheck >/dev/null 2>&1; then \
		govulncheck ./...; \
	else \
		echo "vulncheck: govulncheck not installed, skipping (go install golang.org/x/vuln/cmd/govulncheck@latest)"; \
	fi

ci: vet build test race fuzz-smoke conform-smoke dispatch-soak-smoke cluster-smoke crash-smoke cover vulncheck

# Full metamorphic conformance matrix (nightly soak): every registered
# scheduler × every generator regime × every relation, with minimized
# reproducers fed back into the fuzz corpus. Zero violations expected.
CONFORM_INSTANCES ?= 10000
CONFORM_SEED ?= 1
conform:
	$(GO) run ./cmd/conform -instances $(CONFORM_INSTANCES) -seed $(CONFORM_SEED) \
		-o conform-report.json -corpus testdata/fuzz/FuzzSchedulers

# Small PR-time conformance matrix under the race detector.
conform-smoke:
	$(GO) run -race ./cmd/conform -smoke -o conform-smoke.json

# Coverage gate: total statement coverage must not drop below the floor
# recorded when the gate was introduced (75.1% at the time; floor set
# slightly under to absorb run-to-run fuzz-seed noise).
COVER_MIN ?= 74.0
cover:
	$(GO) test -count=1 -coverprofile=cover.out ./...
	@total=$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	echo "total coverage: $$total% (floor $(COVER_MIN)%)"; \
	awk "BEGIN {exit !($$total >= $(COVER_MIN))}" || \
		{ echo "coverage $$total% fell below the $(COVER_MIN)% gate"; exit 1; }

# Run the HTTP scheduling daemon on :8080 (override: make serve ADDR=:9090).
ADDR ?= :8080
serve:
	$(GO) run ./cmd/schedd -addr $(ADDR)

# Drive a closed loop against a running daemon and validate every response.
LOAD_ADDR ?= http://localhost:8080
loadtest:
	$(GO) run ./cmd/schedload -addr $(LOAD_ADDR) -duration 10s

# Run the fixed solver benchmark matrix and refresh the trajectory file,
# comparing against the committed previous run
# (override: make bench BENCH_OUT=BENCH_pr5.json BENCH_PREV=BENCH_pr4.json).
BENCH_OUT ?= BENCH_pr4.json
BENCH_PREV ?=
bench:
	$(GO) run ./cmd/schedbench -o $(BENCH_OUT) $(if $(BENCH_PREV),-prev $(BENCH_PREV))

# Small-case benchmark smoke for CI: exercises the matrix end to end
# without meaningful machine-time cost.
bench-smoke:
	$(GO) run ./cmd/schedbench -quick -o bench-smoke.json
	cat bench-smoke.json

clean:
	$(GO) clean ./...
	rm -f conform-report.json conform-smoke.json cover.out bench-smoke.json
