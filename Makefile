GO ?= go

.PHONY: all vet build test race fuzz-smoke ci clean

all: build

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Short differential-fuzz pass: every registered scheduler against the
# independent oracles on randomized instances. The checked-in corpus
# under testdata/fuzz/ also replays during plain `make test`.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz=FuzzSchedulers -fuzztime=10s .

ci: vet build test race fuzz-smoke

clean:
	$(GO) clean ./...
