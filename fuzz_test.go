package repro

// FuzzSchedulers is the differential fuzzing oracle: arbitrary bytes are
// decoded (internal/fuzzenc) into a well-formed scheduling instance,
// every registered scheduler runs on it, and the ensemble is
// cross-checked against the independent oracles (universal validator,
// max-flow feasibility, convex optimum, small-instance brute force). Any
// disagreement is a bug in one of the schedulers or one of the oracles.
//
// Run the seeds with plain `go test`; explore with
//
//	go test -fuzz=FuzzSchedulers -fuzztime=30s .
//
// The checked-in corpus lives in testdata/fuzz/FuzzSchedulers; violating
// instances found by cmd/conform are encoded through the same codec and
// appended there, so every conformance regression becomes a permanent
// fuzz seed.

import (
	"testing"

	"repro/internal/check"
	"repro/internal/fuzzenc"
	"repro/internal/opt"

	// Schedulers self-register with the cross-check on import.
	_ "repro/internal/core"
	_ "repro/internal/online"
	_ "repro/internal/partition"
	_ "repro/internal/yds"
)

func FuzzSchedulers(f *testing.F) {
	// Section V.D worked example (n=6, m=4, p = f³).
	f.Add([]byte("\x02\x03\x00\x00\x08\x00\x0a\x00\x02\x00\x0e\x00\x10\x00\x04\x00\x08\x00\x0c\x00" +
		"\x06\x00\x04\x00\x08\x00\x08\x00\x0a\x00\x0c\x00\x0c\x00\x06\x00\x0a\x00"))
	// Fig. 1 YDS instance on one core.
	f.Add([]byte("\x02\x00\x00\x00\x04\x00\x0c\x00\x02\x00\x02\x00\x08\x00\x04\x00\x04\x00\x04\x00"))
	// Single task on two cores.
	f.Add([]byte("\x02\x01\x00\x00\x08\x00\x0a\x00"))
	// n ≤ m: three lightly overlapped tasks on eight cores, p0 > 0.
	f.Add([]byte("\x06\x07\x00\x00\x04\x00\x10\x00\x01\x00\x06\x00\x0f\x00\x02\x00\x03\x00\x0c\x00"))
	// Static-power-heavy mix with fractional releases.
	f.Add([]byte("\x0a\x02\x00\x00\x08\x00\x0a\x00\x01\x80\x03\x00\x06\x80\x02\x00\x0e\x00\x10\x00" +
		"\x05\x00\x02\x00\x04\x00\x00\x40\x01\x00\x01\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		ts, m, pm := fuzzenc.Decode(data)
		if ts == nil {
			return
		}
		rep, err := check.DifferentialOpts(ts, m, pm, check.DiffOptions{
			// The fuzz loop trades oracle sharpness for iteration count:
			// a looser solver gap widens every bound it certifies, and
			// brute force runs only on the smallest instances.
			Solver:        opt.Options{MaxIterations: 1500, RelGap: 1e-4},
			BruteMaxTasks: 4,
			Tol:           1e-5,
		})
		if err != nil {
			t.Fatalf("differential setup failed on valid instance %v: %v", ts, err)
		}
		if !rep.OK() {
			t.Fatalf("schedulers disagree on n=%d m=%d %v:\n%s", len(ts), m, pm, rep.Summary())
		}
	})
}
