package repro

// FuzzSchedulers is the differential fuzzing oracle: arbitrary bytes are
// decoded into a well-formed scheduling instance, every registered
// scheduler runs on it, and the ensemble is cross-checked against the
// independent oracles (universal validator, max-flow feasibility,
// convex optimum, small-instance brute force). Any disagreement is a
// bug in one of the schedulers or one of the oracles.
//
// Run the seeds with plain `go test`; explore with
//
//	go test -fuzz=FuzzSchedulers -fuzztime=30s .
//
// The checked-in corpus lives in testdata/fuzz/FuzzSchedulers.

import (
	"encoding/binary"
	"testing"

	"repro/internal/check"
	"repro/internal/opt"
	"repro/internal/power"
	"repro/internal/task"

	// Schedulers self-register with the cross-check on import.
	_ "repro/internal/core"
	_ "repro/internal/online"
	_ "repro/internal/partition"
	_ "repro/internal/yds"
)

const (
	fuzzMaxTasks  = 8
	fuzzChunkSize = 6
)

// decodeInstance maps raw bytes onto a valid instance, quantizing every
// time value to the 1/256 grid so decompositions stay clean:
//
//	byte 0: power model — alpha = 2 + (b&3)/2, p0 = ((b>>2)&7)·0.05
//	byte 1: cores — m = 1 + b%8
//	then 6-byte chunks, one task each: release u16/256, work u16/256
//	(floored at 1/256), window u16/256 (floored at 1/2).
//
// Returns a nil set when the bytes cannot seed at least one task.
func decodeInstance(data []byte) (task.Set, int, power.Model) {
	if len(data) < 2+fuzzChunkSize {
		return nil, 0, power.Model{}
	}
	pm := power.Unit(2+float64(data[0]&3)*0.5, float64((data[0]>>2)&7)*0.05)
	m := 1 + int(data[1])%8
	body := data[2:]
	n := len(body) / fuzzChunkSize
	if n > fuzzMaxTasks {
		n = fuzzMaxTasks
	}
	ts := make(task.Set, 0, n)
	for i := 0; i < n; i++ {
		c := body[i*fuzzChunkSize:]
		rel := float64(binary.BigEndian.Uint16(c[0:2])) / 256
		work := float64(binary.BigEndian.Uint16(c[2:4])) / 256
		if work < 1.0/256 {
			work = 1.0 / 256
		}
		window := float64(binary.BigEndian.Uint16(c[4:6])) / 256
		if window < 0.5 {
			window = 0.5
		}
		ts = append(ts, task.Task{ID: len(ts), Release: rel, Work: work, Deadline: rel + window})
	}
	if err := ts.Validate(); err != nil {
		return nil, 0, power.Model{}
	}
	return ts, m, pm
}

func FuzzSchedulers(f *testing.F) {
	// Section V.D worked example (n=6, m=4, p = f³).
	f.Add([]byte("\x02\x03\x00\x00\x08\x00\x0a\x00\x02\x00\x0e\x00\x10\x00\x04\x00\x08\x00\x0c\x00" +
		"\x06\x00\x04\x00\x08\x00\x08\x00\x0a\x00\x0c\x00\x0c\x00\x06\x00\x0a\x00"))
	// Fig. 1 YDS instance on one core.
	f.Add([]byte("\x02\x00\x00\x00\x04\x00\x0c\x00\x02\x00\x02\x00\x08\x00\x04\x00\x04\x00\x04\x00"))
	// Single task on two cores.
	f.Add([]byte("\x02\x01\x00\x00\x08\x00\x0a\x00"))
	// n ≤ m: three lightly overlapped tasks on eight cores, p0 > 0.
	f.Add([]byte("\x06\x07\x00\x00\x04\x00\x10\x00\x01\x00\x06\x00\x0f\x00\x02\x00\x03\x00\x0c\x00"))
	// Static-power-heavy mix with fractional releases.
	f.Add([]byte("\x0a\x02\x00\x00\x08\x00\x0a\x00\x01\x80\x03\x00\x06\x80\x02\x00\x0e\x00\x10\x00" +
		"\x05\x00\x02\x00\x04\x00\x00\x40\x01\x00\x01\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		ts, m, pm := decodeInstance(data)
		if ts == nil {
			return
		}
		rep, err := check.DifferentialOpts(ts, m, pm, check.DiffOptions{
			// The fuzz loop trades oracle sharpness for iteration count:
			// a looser solver gap widens every bound it certifies, and
			// brute force runs only on the smallest instances.
			Solver:        opt.Options{MaxIterations: 1500, RelGap: 1e-4},
			BruteMaxTasks: 4,
			Tol:           1e-5,
		})
		if err != nil {
			t.Fatalf("differential setup failed on valid instance %v: %v", ts, err)
		}
		if !rep.OK() {
			t.Fatalf("schedulers disagree on n=%d m=%d %v:\n%s", len(ts), m, pm, rep.Summary())
		}
	})
}
