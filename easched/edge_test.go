package easched

import (
	"errors"
	"math"
	"testing"

	"repro/internal/task"
)

// Edge-case behavior of the public API: degenerate task sets must be
// rejected with useful errors, and the boundary instances (one task,
// fewer tasks than cores, one task eligible everywhere) must produce
// schedules that survive the universal validator.

func TestScheduleRejectsDegenerateInputs(t *testing.T) {
	model := NewModel(3, 0)
	some := MustTasks(T(0, 4, 10))
	cases := []struct {
		name  string
		tasks TaskSet
		cores int
	}{
		{"empty task set", TaskSet{}, 4},
		{"nil task set", nil, 4},
		{"zero cores", some, 0},
		{"negative cores", some, -1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Schedule(c.tasks, c.cores, model, DER); err == nil {
				t.Error("expected an error")
			}
		})
	}
	if _, err := Schedule(TaskSet{}, 4, model, DER); !errors.Is(err, task.ErrEmptySet) {
		t.Errorf("empty-set error %v should wrap task.ErrEmptySet", err)
	}
}

func TestNewTasksRejectsZeroWidthWindow(t *testing.T) {
	cases := []struct {
		name   string
		triple [3]float64
	}{
		{"release equals deadline", T(5, 1, 5)},
		{"deadline before release", T(5, 1, 3)},
		{"zero work", T(0, 0, 10)},
		{"negative work", T(0, -2, 10)},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := NewTasks(c.triple); err == nil {
				t.Error("expected an error")
			}
		})
	}
}

func TestSingleTaskRunsAtIdealFrequency(t *testing.T) {
	// Alone on the machine, a task gets its whole window: f = C/(D−R)
	// (no static power, so no critical-frequency floor) and
	// E = C·f^(α−1) = 6·(6/12)² = 1.5.
	tasks := MustTasks(T(2, 6, 14))
	model := NewModel(3, 0)
	for _, method := range []Method{Even, DER} {
		res, err := Schedule(tasks, 4, model, method)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(res.FinalEnergy-1.5) > 1e-9 {
			t.Errorf("%v: energy %.6f, want 1.5", method, res.FinalEnergy)
		}
		if f := res.FinalFrequencies[0]; math.Abs(f-0.5) > 1e-9 {
			t.Errorf("%v: frequency %.6f, want 0.5", method, f)
		}
		if vs := Verify(res.Final, tasks, 4, model); len(vs) > 0 {
			t.Errorf("%v: %v", method, vs)
		}
	}
}

func TestFewerTasksThanCoresIsUnconstrained(t *testing.T) {
	// With n ≤ m no subinterval is heavy, so every task receives its
	// whole window and the final energy equals the ideal plan's.
	tasks := MustTasks(
		T(0, 8, 10),
		T(2, 14, 18),
		T(4, 8, 16),
	)
	model := NewModel(3, 0.05)
	var want float64
	for _, tk := range tasks {
		want += model.TaskEnergy(tk.Work, tk.Window())
	}
	res, err := Schedule(tasks, len(tasks), model, DER)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.FinalEnergy-want) > 1e-9 {
		t.Errorf("energy %.6f, want ideal %.6f", res.FinalEnergy, want)
	}
	if vs := Verify(res.Final, tasks, len(tasks), model); len(vs) > 0 {
		t.Errorf("validation: %v", vs)
	}
}

func TestTaskSpanningEverySubinterval(t *testing.T) {
	// τ1 covers the whole horizon while short tasks chop it into many
	// subintervals; τ1 is eligible in every one of them.
	tasks := MustTasks(
		T(0, 6, 30),
		T(2, 2, 5),
		T(8, 3, 12),
		T(15, 2, 18),
		T(24, 4, 29),
	)
	model := NewModel(3, 0.1)
	res, err := Schedule(tasks, 2, model, DER)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(res.Decomp.SubsOf(0)), res.Decomp.NumSubs(); got != want {
		t.Errorf("spanning task eligible in %d of %d subintervals", got, want)
	}
	if vs := Verify(res.Final, tasks, 2, model); len(vs) > 0 {
		t.Errorf("validation: %v", vs)
	}
	done := res.Final.CompletedWork()
	for _, tk := range tasks {
		if math.Abs(done[tk.ID]-tk.Work) > 1e-6 {
			t.Errorf("task %d completed %g of %g", tk.ID, done[tk.ID], tk.Work)
		}
	}
}
