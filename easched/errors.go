package easched

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/capped"
	"repro/internal/check"
)

// Error taxonomy of the solve pipeline. Every error returned by Solve
// and SolveBatch matches exactly one of these sentinels under errors.Is
// (plus the generic "solver error" case), so callers — in particular
// the schedd serving layer — can map failures to distinct behaviors
// (HTTP statuses, circuit-breaker accounting, fallback eligibility)
// without string matching.
var (
	// ErrInfeasible marks an instance that cannot meet its deadlines
	// under the requested constraints (e.g. MethodCapped below the
	// minimal feasible speed).
	ErrInfeasible = errors.New("easched: instance infeasible")
	// ErrDeadlineExceeded marks a solve aborted by its context deadline.
	ErrDeadlineExceeded = errors.New("easched: solve deadline exceeded")
	// ErrSolverPanic marks a panic recovered inside a solver; errors.As
	// with *PanicError recovers the panic value and stack.
	ErrSolverPanic = check.ErrSolverPanic
	// ErrInvalidSchedule marks a produced schedule the universal
	// validator rejected.
	ErrInvalidSchedule = errors.New("easched: produced schedule failed validation")
)

// PanicError carries a recovered solver panic (value + stack). It is
// the concrete type behind ErrSolverPanic, shared with internal/check
// so server- and library-level recoveries are indistinguishable to
// errors.As.
type PanicError = check.PanicError

// classify folds an arbitrary solver error into the taxonomy: context
// deadlines become ErrDeadlineExceeded, capped-infeasibility becomes
// ErrInfeasible, and everything else passes through unchanged. The
// original error stays in the chain, so errors.Is against the
// underlying cause keeps working.
func classify(err error) error {
	if err == nil {
		return nil
	}
	switch {
	case errors.Is(err, ErrInfeasible), errors.Is(err, ErrDeadlineExceeded):
		return err // already classified
	case errors.Is(err, capped.ErrInfeasible):
		return fmt.Errorf("%w: %w", ErrInfeasible, err)
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %w", ErrDeadlineExceeded, err)
	default:
		return err
	}
}
