package easched

import (
	"math"
	"math/rand"
	"testing"
)

func TestQuickstartFlow(t *testing.T) {
	tasks := MustTasks(
		T(0, 8, 10),
		T(2, 14, 18),
		T(4, 8, 16),
		T(6, 4, 14),
		T(8, 10, 20),
		T(12, 6, 22),
	)
	model := NewModel(3, 0)
	res, err := Schedule(tasks, 4, model, DER)
	if err != nil {
		t.Fatal(err)
	}
	// The Section V.D example through the public API.
	if math.Abs(res.FinalEnergy-31.8362) > 5e-4 {
		t.Errorf("FinalEnergy = %.4f, want 31.8362", res.FinalEnergy)
	}
	rep, err := Simulate(res.Final, model)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("simulated violations: %v", rep.Violations)
	}
	if math.Abs(rep.Energy-res.FinalEnergy) > 1e-6*res.FinalEnergy {
		t.Errorf("sim energy %g != plan energy %g", rep.Energy, res.FinalEnergy)
	}
	if vs := Verify(res.Final, tasks, 4, model); len(vs) > 0 {
		t.Errorf("final schedule fails verification: %v", vs)
	}
}

func TestScheduleBothOrdering(t *testing.T) {
	tasks := MustTasks(
		T(0, 8, 10), T(2, 14, 18), T(4, 8, 16),
		T(6, 4, 14), T(8, 10, 20), T(12, 6, 22),
	)
	even, der, err := ScheduleBoth(tasks, 4, NewModel(3, 0))
	if err != nil {
		t.Fatal(err)
	}
	if der.FinalEnergy >= even.FinalEnergy {
		t.Errorf("DER %.4f should beat Even %.4f here", der.FinalEnergy, even.FinalEnergy)
	}
}

func TestOptimalLowerBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	tasks, err := GenerateTasks(rng, PaperWorkload(12))
	if err != nil {
		t.Fatal(err)
	}
	model := NewModel(3, 0.1)
	res, err := Schedule(tasks, 4, model, DER)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Optimal(tasks, 4, model)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Energy > res.FinalEnergy+sol.Gap+1e-6 {
		t.Errorf("optimal %.6f above heuristic %.6f", sol.Energy, res.FinalEnergy)
	}
}

func TestIdealAndYDS(t *testing.T) {
	tasks := MustTasks(T(0, 4, 12), T(2, 2, 10), T(4, 4, 8))
	plan, err := Ideal(tasks, NewModel(3, 0))
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Tasks) != 3 {
		t.Fatalf("ideal plan covers %d tasks", len(plan.Tasks))
	}
	sched, prof, err := YDS(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if got := prof.SpeedAt(5); math.Abs(got-1) > 1e-9 {
		t.Errorf("YDS speed at 5 = %g, want 1", got)
	}
	if e := sched.Energy(NewModel(3, 0)); math.Abs(e-7.375) > 1e-9 {
		t.Errorf("YDS energy = %g, want 7.375", e)
	}
}

func TestQuantizeAndFit(t *testing.T) {
	tab := IntelXScale()
	model, err := FitTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	tasks, err := GenerateTasks(rng, XScaleWorkload(10))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Schedule(tasks, 4, model, DER)
	if err != nil {
		t.Fatal(err)
	}
	a := Quantize(res.Final, tab)
	if a.Energy <= 0 {
		t.Errorf("quantized energy = %g", a.Energy)
	}
}

func TestSearchCoresAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	tasks, err := GenerateTasks(rng, PaperWorkload(8))
	if err != nil {
		t.Fatal(err)
	}
	sr, err := SearchCores(tasks, 4, NewModel(3, 0.3), DER)
	if err != nil {
		t.Fatal(err)
	}
	if sr.Cores < 1 || sr.Cores > 4 {
		t.Errorf("chosen cores = %d", sr.Cores)
	}
}
