package easched_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/easched"
	"repro/internal/fault"
)

// sectionVDSpec builds the paper's Section V.D example as a Solve spec.
func sectionVDSpec(t *testing.T) easched.Spec {
	t.Helper()
	ts, err := easched.NewTasks(
		[3]float64{0, 8, 10}, [3]float64{2, 14, 18}, [3]float64{4, 8, 16},
		[3]float64{6, 4, 14}, [3]float64{8, 10, 20}, [3]float64{12, 6, 22},
	)
	if err != nil {
		t.Fatal(err)
	}
	return easched.Spec{Tasks: ts, Cores: 4, Model: easched.Model{Gamma: 1, Alpha: 3, P0: 0.05}}
}

// TestSolveRecoversInjectedPanic drives the solver_panic injection point
// at rate 1 and checks the taxonomy end to end: no crash, a *PanicError,
// and errors.Is(ErrSolverPanic).
func TestSolveRecoversInjectedPanic(t *testing.T) {
	fault.Enable(fault.New(fault.Plan{Rates: map[fault.Point]float64{fault.SolverPanic: 1}, Seed: 1}))
	defer fault.Disable()

	rep, err := easched.Solve(context.Background(), sectionVDSpec(t))
	if rep != nil {
		t.Fatal("panicking solve returned a report")
	}
	if !errors.Is(err, easched.ErrSolverPanic) {
		t.Fatalf("err = %v, want ErrSolverPanic", err)
	}
	var pe *easched.PanicError
	if !errors.As(err, &pe) || len(pe.Stack) == 0 {
		t.Fatalf("panic value/stack not preserved: %v", err)
	}
}

// TestSolveBatchSurvivesInjectedPanics runs a batch with every solve
// panicking: the pool must complete and report per-item typed errors.
func TestSolveBatchSurvivesInjectedPanics(t *testing.T) {
	fault.Enable(fault.New(fault.Plan{Rates: map[fault.Point]float64{fault.SolverPanic: 1}, Seed: 2}))
	defer fault.Disable()

	specs := make([]easched.Spec, 8)
	for i := range specs {
		specs[i] = sectionVDSpec(t)
	}
	results := easched.SolveBatch(context.Background(), specs, 4)
	if len(results) != len(specs) {
		t.Fatalf("got %d results, want %d", len(results), len(specs))
	}
	for _, r := range results {
		if r.Report != nil || !errors.Is(r.Err, easched.ErrSolverPanic) {
			t.Fatalf("item %d: report=%v err=%v, want ErrSolverPanic", r.Index, r.Report, r.Err)
		}
	}
}

// TestSolveClassifiesDeadline pins that an expired context surfaces as
// ErrDeadlineExceeded via the solver_delay injection point.
func TestSolveClassifiesDeadline(t *testing.T) {
	fault.Enable(fault.New(fault.Plan{
		Rates: map[fault.Point]float64{fault.SolverDelay: 1},
		Delay: 50 * time.Millisecond,
		Seed:  3,
	}))
	defer fault.Disable()

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	_, err := easched.Solve(ctx, sectionVDSpec(t))
	if err == nil {
		t.Fatal("deadline-blown solve succeeded")
	}
	if !errors.Is(err, easched.ErrDeadlineExceeded) && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want a deadline classification", err)
	}
}

// TestSolveClassifiesInfeasible pins that MethodCapped below the minimal
// feasible speed reports ErrInfeasible.
func TestSolveClassifiesInfeasible(t *testing.T) {
	spec := sectionVDSpec(t)
	spec.Method = easched.MethodCapped
	// Above the model's critical frequency (≈0.29) but below the minimal
	// feasible uniform speed (task 0 alone needs 8/10 = 0.8).
	spec.FrequencyCap = 0.4
	_, err := easched.Solve(context.Background(), spec)
	if !errors.Is(err, easched.ErrInfeasible) {
		t.Fatalf("err = %v, want ErrInfeasible", err)
	}
}

// TestSolveClassifiesAllocError checks the injected allocator failure is
// a typed fault error, not a panic or silence.
func TestSolveClassifiesAllocError(t *testing.T) {
	fault.Enable(fault.New(fault.Plan{Rates: map[fault.Point]float64{fault.AllocError: 1}, Seed: 4}))
	defer fault.Disable()

	_, err := easched.Solve(context.Background(), sectionVDSpec(t))
	var fe *fault.Error
	if !errors.As(err, &fe) || fe.Point != fault.AllocError {
		t.Fatalf("err = %v, want injected alloc_error", err)
	}
}

// TestTaxonomySentinelsDistinct guards against sentinel aliasing.
func TestTaxonomySentinelsDistinct(t *testing.T) {
	sentinels := []error{
		easched.ErrInfeasible, easched.ErrDeadlineExceeded,
		easched.ErrSolverPanic, easched.ErrInvalidSchedule,
	}
	for i, a := range sentinels {
		for j, b := range sentinels {
			if i != j && errors.Is(a, b) {
				t.Fatalf("sentinels %d and %d alias each other", i, j)
			}
		}
	}
}
