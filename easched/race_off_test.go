//go:build !race

package easched_test

import "time"

// cancelSlack is how long after cancellation a Solve may take to
// return. The race detector slows the solver loops (and therefore the
// spacing between context polls) by an order of magnitude, so the
// budget scales with it — see race_on_test.go.
const cancelSlack = 50 * time.Millisecond
