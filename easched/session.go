package easched

import (
	"context"
	"time"

	"repro/internal/dispatch"
)

// Streaming sessions: the live dispatch runtime (internal/dispatch)
// exposed through the public API. A Session accepts task arrivals over
// time on a virtual clock, coalesces bursts inside a debounce window,
// re-plans the residual workload with a registered scheduler (default
// the paper's event-driven ReplanDER policy, Section VI.D), freezes the
// executed prefix at immutable commit points, and — on Finish —
// accounts the realized energy against the clairvoyant offline optimum
// to report a per-session competitive ratio.

// SessionEvent is one entry of a session's event stream: replans,
// commit points, task completions, load-shedding and the final report.
type SessionEvent = dispatch.Event

// SessionStats is a point-in-time summary of a session.
type SessionStats = dispatch.Stats

// SessionReport is the final accounting of a finished session,
// including the realized schedule, the clairvoyant optimum's energy and
// the competitive ratio.
type SessionReport = dispatch.FinalReport

// SessionSnapshot is a serializable checkpoint of a session (see
// Session.Snapshot / RestoreSession).
type SessionSnapshot = dispatch.Snapshot

// Event types delivered on a session's stream.
const (
	EventReplan   = dispatch.EventReplan
	EventCommit   = dispatch.EventCommit
	EventComplete = dispatch.EventComplete
	EventShed     = dispatch.EventShed
	EventError    = dispatch.EventError
	EventFinal    = dispatch.EventFinal
)

// SessionConfig describes a streaming session. Zero values select
// defaults: ReplanDER, backlog 1024, synchronous (no debounce) replans.
type SessionConfig struct {
	// Algorithm names any registered scheduler used for residual
	// re-planning (default "ReplanDER").
	Algorithm string
	// Cores is the core count m ≥ 1.
	Cores int
	// Model is the continuous power model.
	Model Model
	// Debounce coalesces arrival bursts: all batches arriving inside the
	// window trigger a single re-plan. Zero re-plans on every batch.
	Debounce time.Duration
	// Backlog bounds unfinished tasks before load-shedding (default 1024).
	Backlog int
	// SkipRatio disables the clairvoyant-optimum solve during Finish.
	SkipRatio bool
}

// Session is a live scheduling session. All methods are safe for
// concurrent use.
type Session struct {
	s *dispatch.Session
}

// NewSession opens a streaming session.
func NewSession(cfg SessionConfig) (*Session, error) {
	s, err := dispatch.New(dispatch.Config{
		Algorithm: cfg.Algorithm,
		Cores:     cfg.Cores,
		Model:     cfg.Model,
		Debounce:  cfg.Debounce,
		Backlog:   cfg.Backlog,
		SkipRatio: cfg.SkipRatio,
	})
	if err != nil {
		return nil, err
	}
	return &Session{s: s}, nil
}

// Arrive admits a batch of tasks at virtual time `at` (the session
// clock never runs backwards; an earlier `at` is clamped to "now").
// Task IDs within the batch are positional; the session assigns its own
// IDs in arrival order, which appear in events and the final report.
// It returns how many tasks were admitted and how many were load-shed
// because the backlog bound was hit.
func (s *Session) Arrive(ctx context.Context, at float64, tasks TaskSet) (admitted, shed int, err error) {
	return s.s.Arrive(ctx, at, tasks)
}

// Events subscribes to the session's event stream. Retained history is
// replayed first, then live events follow; the channel closes when the
// session closes. The returned cancel function releases the
// subscription early.
func (s *Session) Events() (<-chan SessionEvent, func(), error) {
	return s.s.Subscribe()
}

// Flush forces any debounced pending arrivals to be re-planned now.
func (s *Session) Flush(ctx context.Context) error { return s.s.Flush(ctx) }

// Stats reports a point-in-time summary.
func (s *Session) Stats() SessionStats { return s.s.Stats() }

// Committed returns the immutable executed prefix of the schedule.
func (s *Session) Committed() []Segment { return s.s.Committed() }

// Plan returns the current plan suffix (from the session clock on).
func (s *Session) Plan() []Segment { return s.s.Plan() }

// Finish runs the session to its horizon, validates the realized
// schedule, accounts it against the clairvoyant offline optimum and
// returns the final report. It is idempotent; arrivals after Finish
// fail with a closed-session error.
func (s *Session) Finish(ctx context.Context) (*SessionReport, error) {
	return s.s.Finish(ctx)
}

// Snapshot checkpoints the session (pending arrivals are flushed
// first). The snapshot is JSON-serializable.
func (s *Session) Snapshot(ctx context.Context) (*SessionSnapshot, error) {
	return s.s.Snapshot(ctx)
}

// RestoreSession rebuilds a session from a Snapshot and re-plans its
// unfinished work.
func RestoreSession(ctx context.Context, snap *SessionSnapshot) (*Session, error) {
	s, err := dispatch.Restore(ctx, snap, dispatch.Config{})
	if err != nil {
		return nil, err
	}
	return &Session{s: s}, nil
}

// Close tears the session down and closes its event streams. A closed
// session keeps serving Stats/Committed/Final reads. Close does not
// finish the remaining plan — call Finish first for a final report.
func (s *Session) Close() { s.s.Close() }

// Final returns the report of a finished session (nil before Finish).
func (s *Session) Final() *SessionReport { return s.s.Final() }
