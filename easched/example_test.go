package easched_test

import (
	"context"
	"fmt"

	"repro/easched"
)

// The paper's Section V.D worked example: six tasks on a quad-core with
// p(f) = f³. The DER-based final schedule reproduces the published
// energy of 31.8362.
func ExampleSchedule() {
	tasks := easched.MustTasks(
		easched.T(0, 8, 10),
		easched.T(2, 14, 18),
		easched.T(4, 8, 16),
		easched.T(6, 4, 14),
		easched.T(8, 10, 20),
		easched.T(12, 6, 22),
	)
	res, err := easched.Schedule(tasks, 4, easched.NewModel(3, 0), easched.DER)
	if err != nil {
		panic(err)
	}
	fmt.Printf("E^F2 = %.4f\n", res.FinalEnergy)
	// Output:
	// E^F2 = 31.8362
}

// Both allocation methods on the same instance: the DER-based method
// (the paper's recommendation) wins.
func ExampleScheduleBoth() {
	tasks := easched.MustTasks(
		easched.T(0, 8, 10),
		easched.T(2, 14, 18),
		easched.T(4, 8, 16),
		easched.T(6, 4, 14),
		easched.T(8, 10, 20),
		easched.T(12, 6, 22),
	)
	even, der, err := easched.ScheduleBoth(tasks, 4, easched.NewModel(3, 0))
	if err != nil {
		panic(err)
	}
	fmt.Printf("even: %.4f\nder:  %.4f\n", even.FinalEnergy, der.FinalEnergy)
	// Output:
	// even: 33.0642
	// der:  31.8362
}

// The introductory YDS example (Fig. 1): speed 1 on the critical
// interval [4,8], 0.75 elsewhere.
func ExampleYDS() {
	tasks := easched.MustTasks(
		easched.T(0, 4, 12),
		easched.T(2, 2, 10),
		easched.T(4, 4, 8),
	)
	_, profile, err := easched.YDS(tasks)
	if err != nil {
		panic(err)
	}
	for _, b := range profile.Bands {
		fmt.Printf("[%g, %g] speed %.2f\n", b.Start, b.End, b.Speed)
	}
	// Output:
	// [0, 4] speed 0.75
	// [4, 8] speed 1.00
	// [8, 12] speed 0.75
}

// The motivational example of Section II: the convex optimum on two
// cores with p(f) = f³ + 0.01 matches the paper's KKT solution,
// 155/32 + 0.2.
func ExampleOptimal() {
	tasks := easched.MustTasks(
		easched.T(0, 4, 12),
		easched.T(2, 2, 10),
		easched.T(4, 4, 8),
	)
	sol, err := easched.Optimal(tasks, 2, easched.NewModel(3, 0.01))
	if err != nil {
		panic(err)
	}
	fmt.Printf("E^opt = %.3f\n", sol.Energy)
	// Output:
	// E^opt = 5.044
}

// Schedulability analysis via the max-flow reduction: the Fig. 1
// instance needs speed exactly 1 on a uniprocessor.
func ExampleMinimalSpeed() {
	tasks := easched.MustTasks(
		easched.T(0, 4, 12),
		easched.T(2, 2, 10),
		easched.T(4, 4, 8),
	)
	s, err := easched.MinimalSpeed(tasks, 1)
	if err != nil {
		panic(err)
	}
	fmt.Printf("minimal feasible speed: %.3f\n", s)
	// Output:
	// minimal feasible speed: 1.000
}

// Quantizing a continuous schedule onto the Intel XScale operating
// points (Table III).
func ExampleQuantize() {
	tab := easched.IntelXScale()
	model, err := easched.FitTable(tab)
	if err != nil {
		panic(err)
	}
	// One job: 4000 Mcycles, must finish within 20 s → 200 MHz minimum.
	tasks := easched.MustTasks(easched.T(0, 4000, 20))
	res, err := easched.Schedule(tasks, 1, model, easched.DER)
	if err != nil {
		panic(err)
	}
	a := easched.Quantize(res.Final, tab)
	fmt.Printf("missed: %v\n", a.Missed)
	// Output:
	// missed: false
}

// The current entry point: one Spec in, one unified Report out, with
// context cancellation and the optimal comparison in the same call.
// Replaces the deprecated Schedule/ScheduleBoth/Optimal wrappers.
func ExampleSolve() {
	tasks := easched.MustTasks(
		easched.T(0, 8, 10),
		easched.T(2, 14, 18),
		easched.T(4, 8, 16),
		easched.T(6, 4, 14),
		easched.T(8, 10, 20),
		easched.T(12, 6, 22),
	)
	rep, err := easched.Solve(context.Background(), easched.Spec{
		Tasks:   tasks,
		Cores:   4,
		Model:   easched.NewModel(3, 0),
		Method:  easched.MethodDER,
		Compare: true, // also solve the convex program for E^opt
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("E^F2 = %.4f, NEC = %.4f\n", rep.Energy, rep.NEC)
	// Output:
	// E^F2 = 31.8362, NEC = 1.0136
}

// A streaming session: tasks arrive over virtual time, the runtime
// re-plans the residual workload at each arrival, and Finish accounts
// the realized schedule against the clairvoyant offline optimum.
func ExampleNewSession() {
	s, err := easched.NewSession(easched.SessionConfig{
		Algorithm: "ReplanDER",
		Cores:     4,
		Model:     easched.NewModel(3, 0),
	})
	if err != nil {
		panic(err)
	}
	defer s.Close()

	ctx := context.Background()
	// The Section V.D instance, fed in two arrival batches.
	first := easched.MustTasks(
		easched.T(0, 8, 10),
		easched.T(2, 14, 18),
		easched.T(4, 8, 16),
	)
	second := easched.MustTasks(
		easched.T(6, 4, 14),
		easched.T(8, 10, 20),
		easched.T(12, 6, 22),
	)
	if _, _, err := s.Arrive(ctx, 0, first); err != nil {
		panic(err)
	}
	if _, _, err := s.Arrive(ctx, 6, second); err != nil {
		panic(err)
	}
	rep, err := s.Finish(ctx)
	if err != nil {
		panic(err)
	}
	fmt.Printf("completed %d tasks, missed %d deadlines, ratio >= 1: %v\n",
		rep.Completed, len(rep.Missed), rep.CompetitiveRatio >= 1)
	// Output:
	// completed 6 tasks, missed 0 deadlines, ratio >= 1: true
}
