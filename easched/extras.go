package easched

import (
	"io"
	"math/rand"

	"repro/internal/capped"
	"repro/internal/discrete"
	"repro/internal/feas"
	"repro/internal/governor"
	"repro/internal/hetero"
	"repro/internal/interval"
	"repro/internal/online"
	"repro/internal/partition"
	"repro/internal/periodic"
	"repro/internal/trace"
)

// --- Feasibility analysis (max-flow based) ---

// Feasible reports whether the task set can meet every deadline on m
// cores when all execution runs at (or below) the frequency ceiling —
// the max-flow schedulability test.
func Feasible(ts TaskSet, cores int, frequencyCeiling float64) (bool, error) {
	return feas.CheckTaskSet(ts, cores, frequencyCeiling)
}

// MinimalSpeed returns the smallest uniform frequency at which the task
// set is schedulable on m cores (the multiprocessor generalization of the
// maximum interval intensity).
func MinimalSpeed(ts TaskSet, cores int) (float64, error) {
	d, err := interval.Decompose(ts, 1e-9)
	if err != nil {
		return 0, err
	}
	s, _, err := feas.MinSpeed(d, cores, 1e-9)
	return s, err
}

// --- Classic task models (periodic / sporadic) ---

// PeriodicTask is one periodic or sporadic task: exact (or minimum)
// inter-release Period, per-job WCET, optional relative Deadline
// (implicit = Period) and first-release Offset.
type PeriodicTask = periodic.Task

// PeriodicSystem is a set of periodic/sporadic tasks.
type PeriodicSystem = periodic.System

// Unroll expands a periodic system over [0, horizon) into the aperiodic
// job set the paper's schedulers consume.
func Unroll(s PeriodicSystem, horizon float64) (TaskSet, error) {
	return periodic.Unroll(s, horizon)
}

// UnrollSporadic expands a sporadic system with randomized legal
// arrivals: inter-release gaps are Period·(1 + jitter·U).
func UnrollSporadic(rng *rand.Rand, s PeriodicSystem, horizon, jitter float64) (TaskSet, error) {
	return periodic.UnrollSporadic(rng, s, horizon, jitter)
}

// Hyperperiod returns the LCM of the system's periods on a quantized
// grid (see periodic.System.Hyperperiod).
func Hyperperiod(s PeriodicSystem, quantum float64) (float64, error) {
	return s.Hyperperiod(quantum, 0)
}

// --- Baselines ---

// SchedulePartitioned runs the non-migratory baseline: tasks are
// statically assigned to cores (first-fit decreasing) and each core runs
// the YDS optimal uniprocessor algorithm with a critical-frequency floor.
// Returns the realized schedule and its energy.
//
// Deprecated: prefer [Solve] with Spec{Method: MethodPartitioned}.
// SchedulePartitioned remains for existing callers and will keep working.
func SchedulePartitioned(ts TaskSet, cores int, m Model) (*Timetable, float64, error) {
	return partition.Schedule(ts, cores, m)
}

// ScheduleOnline runs the non-clairvoyant deployment of the paper's
// DER-based pipeline: re-plan at every task release, follow the plan
// between releases. Never misses a deadline; pays an energy premium for
// not knowing future arrivals.
//
// Deprecated: prefer [Solve] with Spec{Method: MethodOnline}.
// ScheduleOnline remains for existing callers and will keep working.
func ScheduleOnline(ts TaskSet, cores int, m Model) (*online.Result, error) {
	return online.ReplanDER(ts, cores, m)
}

// ScheduleFixedSpeedEDF runs the no-DVFS baseline: global EDF at one
// constant speed. The result reports deadline misses rather than failing.
func ScheduleFixedSpeedEDF(ts TaskSet, cores int, m Model, speed float64) (*online.Result, error) {
	return online.FixedSpeedEDF(ts, cores, m, speed)
}

// GovernorPolicy selects an OS-style reactive DVFS policy.
type GovernorPolicy = governor.Policy

// Governor policies.
const (
	// GovernorPerformance pins every core at the maximum frequency.
	GovernorPerformance = governor.Performance
	// GovernorOndemand jumps to maximum under load, drops proportionally
	// when idle (cpufreq "ondemand").
	GovernorOndemand = governor.Ondemand
	// GovernorConservative steps one operating point at a time.
	GovernorConservative = governor.Conservative
)

// RunGovernor simulates a cpufreq-style reactive governor with global EDF
// dispatching on a discrete-frequency processor — the deadline-oblivious
// baseline practical systems ship. samplePeriod is the governor's
// evaluation interval in task time units.
func RunGovernor(ts TaskSet, cores int, tab *Table, policy GovernorPolicy, samplePeriod float64) (*governor.Result, error) {
	return governor.Run(ts, cores, tab, governor.Config{Policy: policy, SamplePeriod: samplePeriod})
}

// --- Frequency-cap-aware scheduling (extension beyond the paper) ---

// CappedPlan is the output of the cap-aware scheduler.
type CappedPlan = capped.Result

// ErrInfeasibleAtCap is returned when the task set cannot meet its
// deadlines at the frequency cap on the given core count.
var ErrInfeasibleAtCap = capped.ErrInfeasible

// ScheduleCapped runs the paper's pipeline with a frequency ceiling:
// when the plain final schedule would exceed the cap, a two-phase
// max-flow allocation guarantees every frequency stays at or below it,
// so no deadline can be missed on any instance that is feasible at the
// cap (ErrInfeasibleAtCap otherwise).
//
// Deprecated: prefer [Solve] with Spec{Method: MethodCapped,
// FrequencyCap: cap} (which always uses the DER allocation).
// ScheduleCapped remains for existing callers and will keep working.
func ScheduleCapped(ts TaskSet, cores int, m Model, method Method, frequencyCap float64) (*CappedPlan, error) {
	return capped.Schedule(ts, cores, m, method, frequencyCap)
}

// --- Heterogeneous static power (extension beyond the paper) ---

// HeteroPlatform models cores that share the dynamic power curve but
// differ in static power (big.LITTLE-style leakage asymmetry). Schedule
// with the uniform mean-leakage model, then AssignCores maps the
// schedule's virtual cores onto physical cores optimally (rearrangement
// inequality) and Energy accounts the result.
type HeteroPlatform = hetero.Platform

// NewHeteroPlatform builds a platform from the shared dynamic curve and
// per-core static powers.
func NewHeteroPlatform(gamma, alpha float64, staticPower ...float64) (*HeteroPlatform, error) {
	return hetero.NewPlatform(gamma, alpha, staticPower...)
}

// --- Discrete-frequency refinements ---

// QuantizeSplit maps a continuous schedule onto the table using two-level
// frequency splitting: work may be divided between the two operating
// points bracketing the continuous frequency, paying the convex envelope
// of the table. Never worse than Quantize, same miss behaviour.
func QuantizeSplit(t *Timetable, tab *Table) discrete.Assignment {
	return discrete.QuantizeScheduleSplit(t, tab)
}

// --- Export ---

// WriteChromeTrace serializes a schedule as a Chrome trace-event JSON
// document (open in chrome://tracing or Perfetto). usPerUnit scales
// schedule time units to microseconds.
func WriteChromeTrace(w io.Writer, t *Timetable, usPerUnit float64) error {
	return trace.WriteChrome(w, t, usPerUnit)
}

// WriteScheduleCSV serializes a schedule's segments as CSV.
func WriteScheduleCSV(w io.Writer, t *Timetable) error {
	return trace.WriteScheduleCSV(w, t)
}
