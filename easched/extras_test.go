package easched

import (
	"bytes"
	"math"
	"math/rand"
	"strings"
	"testing"
)

func TestFeasibilityAPI(t *testing.T) {
	tasks := MustTasks(T(0, 4, 12), T(2, 2, 10), T(4, 4, 8))
	ok, err := Feasible(tasks, 1, 1.0)
	if err != nil || !ok {
		t.Errorf("Fig.1 instance feasible at speed 1 on one core: ok=%v err=%v", ok, err)
	}
	ok, err = Feasible(tasks, 1, 0.9)
	if err != nil || ok {
		t.Errorf("Fig.1 instance infeasible at 0.9: ok=%v err=%v", ok, err)
	}
	s, err := MinimalSpeed(tasks, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-1.0) > 1e-6 {
		t.Errorf("MinimalSpeed = %g, want 1.0", s)
	}
}

func TestPartitionedAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	tasks, err := GenerateTasks(rng, PaperWorkload(10))
	if err != nil {
		t.Fatal(err)
	}
	model := NewModel(3, 0.1)
	sched, energy, err := SchedulePartitioned(tasks, 3, model)
	if err != nil {
		t.Fatal(err)
	}
	if energy <= 0 {
		t.Errorf("energy = %g", energy)
	}
	rep, err := Simulate(sched, model)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Errorf("partitioned schedule violations: %v", rep.Violations)
	}
	if rep.Migrations != 0 {
		t.Errorf("partitioned schedule migrated %d times", rep.Migrations)
	}
}

func TestOnlineAPI(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tasks, err := GenerateTasks(rng, PaperWorkload(10))
	if err != nil {
		t.Fatal(err)
	}
	model := NewModel(3, 0.05)
	res, err := ScheduleOnline(tasks, 4, model)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MissedTasks) != 0 {
		t.Errorf("online missed %v", res.MissedTasks)
	}
	off, err := Schedule(tasks, 4, model, DER)
	if err != nil {
		t.Fatal(err)
	}
	if res.Energy < off.FinalEnergy*0.9 {
		t.Errorf("online energy %.4f suspiciously below offline %.4f", res.Energy, off.FinalEnergy)
	}
}

func TestFixedSpeedEDFAPI(t *testing.T) {
	tasks := MustTasks(T(0, 4, 10))
	res, err := ScheduleFixedSpeedEDF(tasks, 1, NewModel(3, 0), 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MissedTasks) != 0 || res.Energy <= 0 {
		t.Errorf("unexpected result %+v", res)
	}
}

func TestQuantizeSplitAPI(t *testing.T) {
	tab := IntelXScale()
	model, err := FitTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(6))
	tasks, err := GenerateTasks(rng, XScaleWorkload(10))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Schedule(tasks, 4, model, DER)
	if err != nil {
		t.Fatal(err)
	}
	up := Quantize(res.Final, tab)
	split := QuantizeSplit(res.Final, tab)
	if split.Energy > up.Energy+1e-6 {
		t.Errorf("split %.2f worse than round-up %.2f", split.Energy, up.Energy)
	}
}

func TestExportAPI(t *testing.T) {
	tasks := MustTasks(T(0, 4, 12), T(2, 2, 10), T(4, 4, 8))
	res, err := Schedule(tasks, 2, NewModel(3, 0.01), DER)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteChromeTrace(&buf, res.Final, 1e6); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "traceEvents") {
		t.Error("trace output missing traceEvents")
	}
	buf.Reset()
	if err := WriteScheduleCSV(&buf, res.Final); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "task,core,start") {
		t.Errorf("csv header: %q", strings.SplitN(buf.String(), "\n", 2)[0])
	}
}

func TestRunGovernorAPI(t *testing.T) {
	tasks := MustTasks(T(0, 4000, 100))
	res, err := RunGovernor(tasks, 1, IntelXScale(), GovernorPerformance, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.MissedTasks) != 0 {
		t.Errorf("performance governor missed %v", res.MissedTasks)
	}
	// 4000 Mcycles at 1000 MHz @ 1600 mW = 6400 mJ.
	if math.Abs(res.Energy-6400) > 1e-6 {
		t.Errorf("energy = %g, want 6400", res.Energy)
	}
	ond, err := RunGovernor(tasks, 1, IntelXScale(), GovernorOndemand, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ond.Energy > res.Energy {
		t.Errorf("ondemand %g should not exceed performance %g on a light task", ond.Energy, res.Energy)
	}
}

func TestScheduleCappedAPI(t *testing.T) {
	tab := IntelXScale()
	model, err := FitTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	p := XScaleWorkload(40)
	p.ReleaseHi = 100
	p.IntensityLo = 0.5
	rng := rand.New(rand.NewSource(8))
	tasks, err := GenerateTasks(rng, p)
	if err != nil {
		t.Fatal(err)
	}
	res, err := ScheduleCapped(tasks, 4, model, DER, tab.MaxFrequency())
	if err == ErrInfeasibleAtCap {
		t.Skip("instance infeasible at f_max")
	}
	if err != nil {
		t.Fatal(err)
	}
	a := Quantize(res.Schedule, tab)
	if a.Missed {
		t.Errorf("capped schedule missed %v", a.MissedTasks)
	}
}
