package easched_test

import (
	"context"
	"testing"

	"repro/easched"
	"repro/internal/opt"
)

func TestConformSmallMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix run in -short mode")
	}
	rep, err := easched.Conform(context.Background(), easched.ConformOptions{
		Instances: 12,
		Seed:      3,
		MaxTasks:  5,
		Solver:    opt.Options{MaxIterations: 800, RelGap: 1e-4},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("violations:\n%s", rep.Summary())
	}
	if rep.Instances != 12 || len(rep.Regimes) == 0 || len(rep.Relations) == 0 {
		t.Fatalf("report incomplete: %+v", rep)
	}
}

func TestConformNilContext(t *testing.T) {
	rep, err := easched.Conform(nil, easched.ConformOptions{ //nolint:staticcheck // nil ctx is part of the contract
		Instances: 1, Seed: 9, MaxTasks: 3,
		Solver:     opt.Options{MaxIterations: 400, RelGap: 1e-3},
		Schedulers: []string{"S^F2"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep == nil {
		t.Fatal("nil report")
	}
}

func TestConformRelationLibraryExposed(t *testing.T) {
	rels := easched.ConformRelations()
	if len(rels) < 10 {
		t.Fatalf("only %d relations exposed", len(rels))
	}
	for _, r := range rels {
		if r.Justification == "" {
			t.Fatalf("relation %s has no justification", r.Name)
		}
	}
	if len(easched.ConformRegimes()) < 6 {
		t.Fatalf("generator zoo too small: %v", easched.ConformRegimes())
	}
}
