//go:build race

package easched_test

import "time"

// Under -race every solver iteration (and so the gap between context
// polls) runs ~10-20x slower; keep the promptness contract meaningful
// without flaking by widening the budget accordingly.
const cancelSlack = 500 * time.Millisecond
