package easched

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"repro/internal/capped"
	"repro/internal/core"
	"repro/internal/discrete"
	"repro/internal/fault"
	"repro/internal/interval"
	"repro/internal/online"
	"repro/internal/opt"
	"repro/internal/yds"
)

// --- Unified context-first solve API ---
//
// Solve is the single front door of the library: one Spec describes the
// instance (tasks, cores, power model), the algorithm, and any add-ons
// (optimal comparison, discrete-table quantization), and one Report
// carries everything produced. The seven specialized entry points kept
// for compatibility (Schedule, ScheduleBoth, Optimal, YDS,
// SchedulePartitioned, ScheduleOnline, ScheduleCapped) are thin legacy
// wrappers over the same machinery.

// SolveMethod selects the scheduling algorithm of a Spec. The zero value
// is MethodDER, the paper's recommended configuration.
type SolveMethod string

// Methods accepted by Solve.
const (
	// MethodDER is the DER-based subinterval heuristic (S^I2/S^F2),
	// the paper's recommended configuration. Default.
	MethodDER SolveMethod = "der"
	// MethodEven is the evenly allocating subinterval heuristic
	// (S^I1/S^F1).
	MethodEven SolveMethod = "even"
	// MethodYDS is the classic uniprocessor optimal algorithm; the
	// schedule always occupies a single core regardless of Spec.Cores.
	MethodYDS SolveMethod = "yds"
	// MethodPartitioned is the non-migratory baseline: first-fit
	// decreasing partitioning with per-core YDS.
	MethodPartitioned SolveMethod = "partitioned"
	// MethodOnline is the non-clairvoyant deployment: re-plan the
	// DER pipeline at every release.
	MethodOnline SolveMethod = "online"
	// MethodCapped is the DER pipeline under a frequency ceiling;
	// requires Spec.FrequencyCap > 0.
	MethodCapped SolveMethod = "capped"
)

// Spec describes one solve: the instance, the algorithm, and optional
// add-ons. The zero values of Method and Tolerance select the paper's
// defaults (DER, 1e-9).
type Spec struct {
	// Tasks is the aperiodic workload.
	Tasks TaskSet
	// Cores is the processor core count m.
	Cores int
	// Model is the continuous power model p(f) = γ·f^α + p0.
	Model Model
	// Method selects the algorithm (default MethodDER).
	Method SolveMethod
	// Compare additionally solves the convex program for E^opt and
	// fills Report.Optimal and Report.NEC.
	Compare bool
	// Discrete, when non-nil, quantizes the final schedule onto the
	// table (rounding up) and fills Report.Quantized.
	Discrete *Table
	// FrequencyCap is the frequency ceiling for MethodCapped.
	FrequencyCap float64
	// Tolerance merges subinterval boundaries closer than this
	// (default 1e-9).
	Tolerance float64
}

// Report is the unified output of Solve. Schedule and Energy are always
// set; the remaining fields depend on the method and add-ons requested.
type Report struct {
	// Method that produced the report.
	Method SolveMethod
	// Schedule is the realized, validated schedule.
	Schedule *Timetable
	// Energy is the schedule's energy as accounted by the algorithm
	// itself.
	Energy float64

	// Plan is the full subinterval pipeline output (MethodDER,
	// MethodEven).
	Plan *Plan
	// Capped is the cap-aware result (MethodCapped).
	Capped *CappedPlan
	// Online is the online replanner result (MethodOnline).
	Online *online.Result
	// YDSProfile is the uniprocessor speed profile (MethodYDS).
	YDSProfile *yds.Profile

	// Optimal is the convex-program solution (Spec.Compare).
	Optimal *opt.Solution
	// NEC is Energy normalized by the optimal energy (Spec.Compare):
	// the paper's evaluation metric.
	NEC float64

	// Quantized is the discrete-table assignment (Spec.Discrete).
	Quantized *discrete.Assignment
}

// solverPool recycles core.Solver scratch arenas across Solve calls, so
// a serving loop pays the hot path's steady-state allocation cost (what
// escapes into the Report) rather than rebuilding scratch per request.
var solverPool = sync.Pool{New: func() any { return core.NewSolver() }}

// Solve runs one scheduling instance described by spec under ctx.
//
// Cancellation: the subinterval pipeline (MethodDER, MethodEven) and the
// convex solver (Compare) observe ctx between solver passes and abort
// promptly with an error wrapping ctx.Err(); the remaining methods check
// ctx at phase boundaries.
//
// Robustness: a panic anywhere in the pipeline is recovered and
// returned as a *PanicError matching ErrSolverPanic, and errors are
// classified into the package's taxonomy (ErrInfeasible,
// ErrDeadlineExceeded) for errors.Is dispatch. When a process-wide
// fault injector is enabled (internal/fault, off by default), Solve
// honors the solver_panic, solver_delay, and alloc_error points.
func Solve(ctx context.Context, spec Spec) (rep *Report, err error) {
	defer func() {
		if r := recover(); r != nil {
			rep, err = nil, &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	if ctx == nil {
		ctx = context.Background()
	}
	if in := fault.Active(); in != nil {
		if in.Should(fault.SolverPanic) {
			panic("injected solver panic")
		}
		if in.Should(fault.SolverDelay) {
			t := time.NewTimer(in.Delay())
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
			}
		}
		if ferr := in.Err(fault.AllocError); ferr != nil {
			return nil, ferr
		}
	}
	rep, err = solve(ctx, spec)
	if err != nil {
		return nil, classify(err)
	}
	return rep, nil
}

// solve is the taxonomy- and recovery-free pipeline behind Solve.
func solve(ctx context.Context, spec Spec) (*Report, error) {
	method := spec.Method
	if method == "" {
		method = MethodDER
	}
	tol := spec.Tolerance
	if tol <= 0 {
		tol = 1e-9
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("easched: solve aborted: %w", err)
	}

	rep := &Report{Method: method}
	switch method {
	case MethodDER, MethodEven:
		am := DER
		if method == MethodEven {
			am = Even
		}
		sv := solverPool.Get().(*core.Solver)
		res, err := sv.Schedule(spec.Tasks, spec.Cores, spec.Model, am,
			core.Options{Tolerance: tol, Context: ctx})
		solverPool.Put(sv)
		if err != nil {
			return nil, err
		}
		rep.Plan = res
		rep.Schedule = res.Final
		rep.Energy = res.FinalEnergy
	case MethodYDS:
		sched, prof, err := yds.Schedule(spec.Tasks)
		if err != nil {
			return nil, err
		}
		rep.Schedule = sched
		rep.Energy = sched.Energy(spec.Model)
		rep.YDSProfile = prof
	case MethodPartitioned:
		sched, energy, err := SchedulePartitioned(spec.Tasks, spec.Cores, spec.Model)
		if err != nil {
			return nil, err
		}
		rep.Schedule = sched
		rep.Energy = energy
	case MethodOnline:
		res, err := online.ReplanDER(spec.Tasks, spec.Cores, spec.Model)
		if err != nil {
			return nil, err
		}
		rep.Online = res
		rep.Schedule = res.Schedule
		rep.Energy = res.Energy
	case MethodCapped:
		if spec.FrequencyCap <= 0 {
			return nil, fmt.Errorf("easched: method %q needs FrequencyCap > 0", method)
		}
		res, err := capped.Schedule(spec.Tasks, spec.Cores, spec.Model, DER, spec.FrequencyCap)
		if err != nil {
			return nil, err
		}
		rep.Capped = res
		rep.Schedule = res.Schedule
		rep.Energy = res.Energy
	default:
		return nil, fmt.Errorf("easched: unknown method %q", method)
	}

	if spec.Compare {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("easched: solve aborted: %w", err)
		}
		d, err := interval.Decompose(spec.Tasks, tol)
		if err != nil {
			return nil, err
		}
		sol, err := opt.Solve(d, spec.Cores, spec.Model, opt.Options{Context: ctx})
		if err != nil {
			return nil, err
		}
		rep.Optimal = sol
		if sol.Energy > 0 {
			rep.NEC = rep.Energy / sol.Energy
		}
	}
	if spec.Discrete != nil {
		a := discrete.QuantizeSchedule(rep.Schedule, spec.Discrete, discrete.RoundUp)
		rep.Quantized = &a
	}
	return rep, nil
}

// BatchResult is one SolveBatch outcome; exactly one of Report and Err
// is non-nil.
type BatchResult struct {
	// Index of the spec within the batch.
	Index int
	// Report is the solve output on success.
	Report *Report
	// Err is the failure (including ctx.Err() for items abandoned on
	// cancellation).
	Err error
}

// SolveBatch solves independent instances concurrently across a worker
// pool and returns the results in spec order. workers ≤ 0 selects
// min(len(specs), GOMAXPROCS). Each worker reuses one solver's scratch
// arenas across its share of the batch, so large batches amortize
// per-solve allocation. A canceled ctx stops dispatch; undone items
// report ctx.Err().
func SolveBatch(ctx context.Context, specs []Spec, workers int) []BatchResult {
	if ctx == nil {
		ctx = context.Background()
	}
	out := make([]BatchResult, len(specs))
	if len(specs) == 0 {
		return out
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	idx := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range idx {
				rep, err := Solve(ctx, specs[i])
				out[i] = BatchResult{Index: i, Report: rep, Err: err}
			}
		}()
	}
	for i := range specs {
		select {
		case idx <- i:
		case <-ctx.Done():
			out[i] = BatchResult{Index: i, Err: ctx.Err()}
			for j := i + 1; j < len(specs); j++ {
				out[j] = BatchResult{Index: j, Err: ctx.Err()}
			}
			close(idx)
			wg.Wait()
			return out
		}
	}
	close(idx)
	wg.Wait()
	return out
}
