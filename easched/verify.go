package easched

import (
	"repro/internal/check"
)

// --- Universal schedule verification (internal/check) ---

// Violation is one structured scheduling-contract failure found by the
// universal validator.
type Violation = check.Violation

// ViolationKind classifies a Violation.
type ViolationKind = check.Kind

// CrossCheckReport is the outcome of running every registered scheduler
// on one instance and cross-checking the ensemble against the
// independent oracles (feasibility analyzer, convex optimum, brute
// force on small instances).
type CrossCheckReport = check.DiffReport

// Verify re-derives the scheduling contract from the raw schedule alone
// — work conservation per task, window containment, per-instant core
// count ≤ cores, positive frequencies — and independently re-integrates
// energy by sweeping instantaneous power over time. It returns every
// violation found (nil means the schedule is provably consistent with
// the task set under the model).
func Verify(t *Timetable, tasks TaskSet, cores int, m Model) []Violation {
	return check.Validate(t, tasks, cores, m)
}

// CrossCheck runs every scheduler in the library on the instance and
// cross-validates them against each other and the oracles; see
// CrossCheckReport.OK and CrossCheckReport.Summary.
func CrossCheck(tasks TaskSet, cores int, m Model) (*CrossCheckReport, error) {
	return check.Differential(tasks, cores, m)
}
