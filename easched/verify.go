package easched

import (
	"context"
	"fmt"

	"repro/internal/check"
)

// --- Universal schedule verification (internal/check) ---

// Violation is one structured scheduling-contract failure found by the
// universal validator.
type Violation = check.Violation

// ViolationKind classifies a Violation.
type ViolationKind = check.Kind

// CrossCheckReport is the outcome of running every registered scheduler
// on one instance and cross-checking the ensemble against the
// independent oracles (feasibility analyzer, convex optimum, brute
// force on small instances).
type CrossCheckReport = check.DiffReport

// Verify re-derives the scheduling contract from the raw schedule alone
// — work conservation per task, window containment, per-instant core
// count ≤ cores, positive frequencies — and independently re-integrates
// energy by sweeping instantaneous power over time. It returns every
// violation found (nil means the schedule is provably consistent with
// the task set under the model).
func Verify(t *Timetable, tasks TaskSet, cores int, m Model) []Violation {
	return check.Validate(t, tasks, cores, m)
}

// CrossCheck runs every scheduler in the library on the instance and
// cross-validates them against each other and the oracles; see
// CrossCheckReport.OK and CrossCheckReport.Summary.
func CrossCheck(tasks TaskSet, cores int, m Model) (*CrossCheckReport, error) {
	return check.Differential(tasks, cores, m)
}

// Algorithms returns the sorted names of every scheduler registered with
// the universal cross-check (e.g. "S^F2", "YDS", "ReplanDER"). These are
// the algorithm identifiers accepted by RunAlgorithm and by the schedd
// HTTP service.
func Algorithms() []string { return check.Names() }

// RunAlgorithm dispatches to a registered scheduler by name and returns
// the realized schedule together with the energy the scheduler itself
// reports. Unknown names are an error; see Algorithms for the valid set.
// The context is threaded into the solver, which aborts promptly when it
// is canceled.
func RunAlgorithm(ctx context.Context, name string, tasks TaskSet, cores int, m Model) (*Timetable, float64, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	e, ok := check.Lookup(name)
	if !ok {
		return nil, 0, fmt.Errorf("easched: unknown algorithm %q (have %v)", name, check.Names())
	}
	return e.Run(ctx, tasks, cores, m)
}
