package easched

import (
	"context"
	"testing"
)

func TestSessionPublicAPI(t *testing.T) {
	ctx := context.Background()
	s, err := NewSession(SessionConfig{Cores: 2, Model: NewModel(3, 0.05)})
	if err != nil {
		t.Fatal(err)
	}
	events, cancel, err := s.Events()
	if err != nil {
		t.Fatal(err)
	}
	defer cancel()

	if _, _, err := s.Arrive(ctx, 0, MustTasks(T(0, 2, 6), T(0, 1, 4))); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Arrive(ctx, 3, MustTasks(T(3, 2, 10))); err != nil {
		t.Fatal(err)
	}
	st := s.Stats()
	if st.Tasks != 3 || st.Replans == 0 {
		t.Fatalf("stats after arrivals: %+v", st)
	}

	f, err := s.Finish(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if f.Completed != 3 || len(f.Missed) != 0 || len(f.Violations) != 0 {
		t.Fatalf("final report: %+v", f)
	}
	if f.CompetitiveRatio < 1-1e-9 {
		t.Fatalf("competitive ratio %g < 1", f.CompetitiveRatio)
	}
	if len(s.Committed()) == 0 {
		t.Fatal("no committed segments after Finish")
	}
	s.Close()

	// The stream replays history and closes; the final event arrives.
	var sawFinal bool
	for ev := range events {
		if ev.Type == EventFinal {
			sawFinal = true
		}
	}
	if !sawFinal {
		t.Fatal("no final event on stream")
	}
	if s.Final() == nil {
		t.Fatal("Final() nil after Finish")
	}
}

func TestSessionSnapshotRoundTrip(t *testing.T) {
	ctx := context.Background()
	s, err := NewSession(SessionConfig{Cores: 2, Model: NewModel(3, 0.05), SkipRatio: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if _, _, err := s.Arrive(ctx, 0, MustTasks(T(0, 2, 8))); err != nil {
		t.Fatal(err)
	}
	snap, err := s.Snapshot(ctx)
	if err != nil {
		t.Fatal(err)
	}
	r, err := RestoreSession(ctx, snap)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, _, err := r.Arrive(ctx, 4, MustTasks(T(4, 1, 9))); err != nil {
		t.Fatal(err)
	}
	f, err := r.Finish(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if f.Completed != 2 || len(f.Missed) != 0 {
		t.Fatalf("restored session final: %+v", f)
	}
}
