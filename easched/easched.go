// Package easched is the public API of the energy-aware aperiodic-task
// scheduling library, a reproduction of Li & Wu, "Energy-Aware Scheduling
// for Aperiodic Tasks on Multi-core Processors" (ICPP 2014).
//
// The package wraps the internal substrates behind a small surface:
//
//   - describe a workload with Task values (release, work, deadline);
//   - describe the platform with a power model p(f) = γ·f^α + p0 and a
//     core count;
//   - call Solve with a Spec to obtain a concrete, validated,
//     collision-free multi-core DVFS schedule — by default the paper's
//     recommended DER-based subinterval heuristic — optionally compared
//     against the convex-programming optimum (Spec.Compare) and
//     quantized onto a real processor's frequency table (Spec.Discrete);
//   - call SolveBatch to solve many independent instances across a
//     worker pool;
//   - execute any schedule in the discrete-event simulator with
//     Simulate.
//
// A minimal session:
//
//	tasks := easched.MustTasks(
//	    easched.T(0, 8, 10),   // release 0, work 8, deadline 10
//	    easched.T(2, 14, 18),
//	)
//	model := easched.NewModel(3, 0.05)     // p(f) = f³ + 0.05
//	rep, err := easched.Solve(ctx, easched.Spec{Tasks: tasks, Cores: 4, Model: model})
//	fmt.Println(rep.Energy, rep.Schedule.Gantt(64))
//
// The specialized entry points predating Solve (Schedule, ScheduleBoth,
// Optimal, YDS, SchedulePartitioned, ScheduleOnline, ScheduleCapped)
// remain as thin legacy wrappers.
package easched

import (
	"context"
	"math/rand"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/discrete"
	"repro/internal/ideal"
	"repro/internal/interval"
	"repro/internal/opt"
	"repro/internal/power"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/yds"
)

// Task re-exports the aperiodic task model: τ = (Release, Work, Deadline).
type Task = task.Task

// TaskSet is an ordered collection of tasks with positional IDs.
type TaskSet = task.Set

// GenParams configures the random workload generator of the paper's
// evaluation (releases, work and intensity ranges).
type GenParams = task.GenParams

// Model is the continuous power model p(f) = Gamma·f^Alpha + P0.
type Model = power.Model

// Table is a discrete frequency/power table of a practical processor.
type Table = power.Table

// Level is one operating point of a Table.
type Level = power.Level

// Schedule types.
type (
	// Plan is the full output of the subinterval scheduler: the ideal
	// plan, the allocation, the realized intermediate and final schedules
	// and their energies.
	Plan = core.Result
	// Timetable is a concrete multi-core schedule (segments with
	// frequencies) with validation, energy accounting and Gantt rendering.
	Timetable = schedule.Schedule
	// Segment is one contiguous execution of a task on a core.
	Segment = schedule.Segment
)

// Method selects the heavily-overlapped-subinterval allocation policy.
type Method = alloc.Method

// Allocation policies (Section V of the paper).
const (
	// Even splits capacity evenly among overlapping tasks (S^I1/S^F1).
	Even = alloc.Even
	// DER splits capacity by Desired Execution Requirement (S^I2/S^F2) —
	// the paper's recommended method.
	DER = alloc.DER
)

// T constructs a task (release, work, deadline); IDs are assigned by
// NewTasks/MustTasks positionally.
func T(release, work, deadline float64) [3]float64 {
	return [3]float64{release, work, deadline}
}

// NewTasks validates and builds a TaskSet from T(...) triples.
func NewTasks(triples ...[3]float64) (TaskSet, error) { return task.New(triples...) }

// MustTasks is NewTasks but panics on invalid input.
func MustTasks(triples ...[3]float64) TaskSet { return task.MustNew(triples...) }

// GenerateTasks draws a random workload; see PaperWorkload and
// XScaleWorkload for the paper's configurations.
func GenerateTasks(rng *rand.Rand, p GenParams) (TaskSet, error) { return task.Generate(rng, p) }

// PaperWorkload returns the generator parameters of Figures 6-10
// (n tasks, releases on [0,200], work on [10,30], intensity on [0.1,1]).
func PaperWorkload(n int) GenParams { return task.PaperDefaults(n) }

// XScaleWorkload returns the generator parameters of the practical
// XScale experiment (Section VI.C).
func XScaleWorkload(n int) GenParams { return task.XScaleDefaults(n) }

// NewModel returns the unit-coefficient model p(f) = f^alpha + p0.
func NewModel(alpha, p0 float64) Model { return power.Unit(alpha, p0) }

// IntelXScale returns the Intel XScale frequency/power table (Table III).
func IntelXScale() *Table { return power.IntelXScale() }

// FitTable fits p(f) = γ·f^α + p0 to a discrete table (Section VI.C) and
// returns the continuous model.
func FitTable(t *Table) (Model, error) {
	fit, err := power.FitDefault(t)
	if err != nil {
		return Model{}, err
	}
	return fit.Model, nil
}

// Schedule runs the paper's subinterval-based scheduler and returns the
// full plan, including the realized and validated final schedule
// (res.Final) and its energy (res.FinalEnergy).
//
// Deprecated: new code should call [Solve], which adds context
// cancellation, optimal comparison and quantization behind one Spec.
// Schedule remains for existing callers and will keep working.
func Schedule(ts TaskSet, cores int, m Model, method Method) (*Plan, error) {
	sm := MethodDER
	if method == Even {
		sm = MethodEven
	}
	rep, err := Solve(context.Background(), Spec{Tasks: ts, Cores: cores, Model: m, Method: sm})
	if err != nil {
		return nil, err
	}
	return rep.Plan, nil
}

// ScheduleBoth runs both allocation methods and returns (even, der).
//
// Deprecated: new code should call [Solve] once per method (or
// [SolveBatch] for many instances). ScheduleBoth remains for existing
// callers and will keep working.
func ScheduleBoth(ts TaskSet, cores int, m Model) (*Plan, *Plan, error) {
	s, err := core.RunSuite(ts, cores, m, core.Options{Tolerance: 1e-9})
	if err != nil {
		return nil, nil, err
	}
	return s.Even, s.DER, nil
}

// SearchCores simulates every core count 1..maxCores and returns the
// energy-minimal plan together with the per-count energy curve
// (Section VI.D).
func SearchCores(ts TaskSet, maxCores int, m Model, method Method) (*core.SearchResult, error) {
	return core.SearchCores(ts, maxCores, m, method, core.Options{Tolerance: 1e-9})
}

// Optimal solves the reformulated convex program (Theorem 1) and returns
// the optimal energy E^opt with a duality-gap certificate.
//
// Deprecated: [Solve] with Spec.Compare produces the same solution
// alongside the heuristic schedule (and honors cancellation). Optimal
// remains for existing callers and will keep working.
func Optimal(ts TaskSet, cores int, m Model) (*opt.Solution, error) {
	d, err := interval.Decompose(ts, 1e-9)
	if err != nil {
		return nil, err
	}
	return opt.Solve(d, cores, m, opt.Options{})
}

// Ideal computes the unlimited-core lower-bound plan S^O.
func Ideal(ts TaskSet, m Model) (*ideal.Plan, error) { return ideal.Build(ts, m) }

// YDS runs the classic uniprocessor optimal algorithm and returns the
// realized schedule and speed profile.
//
// Deprecated: [Solve] with Spec{Method: MethodYDS} returns the same
// schedule plus its energy under the spec's model. YDS remains for
// existing callers and will keep working.
func YDS(ts TaskSet) (*Timetable, *yds.Profile, error) { return yds.Schedule(ts) }

// Quantize maps a continuous schedule onto a processor's discrete
// operating points (rounding up, deadline-safe below f_max) and returns
// the table-measured energy and deadline misses.
func Quantize(t *Timetable, tab *Table) discrete.Assignment {
	return discrete.QuantizeSchedule(t, tab, discrete.RoundUp)
}

// Simulate replays a schedule through the discrete-event executor,
// returning energy, utilization, completion times, and any violations.
func Simulate(t *Timetable, m Model) (*sim.Report, error) { return sim.Run(t, m) }
