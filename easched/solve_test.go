package easched_test

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/easched"
)

func solveWorkload(t testing.TB, n int) easched.TaskSet {
	t.Helper()
	rng := rand.New(rand.NewSource(20140901))
	ts, err := easched.GenerateTasks(rng, easched.PaperWorkload(n))
	if err != nil {
		t.Fatal(err)
	}
	return ts
}

func TestSolveDefaultsToDER(t *testing.T) {
	ts := solveWorkload(t, 20)
	m := easched.NewModel(3, 0.05)
	rep, err := easched.Solve(context.Background(), easched.Spec{Tasks: ts, Cores: 4, Model: m})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Method != easched.MethodDER {
		t.Fatalf("default method = %q, want %q", rep.Method, easched.MethodDER)
	}
	if rep.Plan == nil || rep.Schedule == nil {
		t.Fatal("DER report missing Plan or Schedule")
	}
	if rep.Energy != rep.Plan.FinalEnergy {
		t.Fatalf("Energy %g != Plan.FinalEnergy %g", rep.Energy, rep.Plan.FinalEnergy)
	}
	// Must agree with the legacy entry point on the same instance.
	legacy, err := easched.Schedule(ts, 4, m, easched.DER)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rep.Energy-legacy.FinalEnergy) > 1e-9*legacy.FinalEnergy {
		t.Fatalf("Solve energy %g != legacy Schedule energy %g", rep.Energy, legacy.FinalEnergy)
	}
}

func TestSolveEveryMethodVerifies(t *testing.T) {
	ts := solveWorkload(t, 20)
	m := easched.NewModel(3, 0.05)
	for _, method := range []easched.SolveMethod{
		easched.MethodDER, easched.MethodEven, easched.MethodYDS,
		easched.MethodPartitioned, easched.MethodOnline, easched.MethodCapped,
	} {
		spec := easched.Spec{Tasks: ts, Cores: 4, Model: m, Method: method}
		if method == easched.MethodCapped {
			spec.FrequencyCap = 4
		}
		cores := 4
		if method == easched.MethodYDS {
			cores = 1 // YDS realizes on a single core
		}
		rep, err := easched.Solve(context.Background(), spec)
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if rep.Schedule == nil || !(rep.Energy > 0) {
			t.Fatalf("%s: missing schedule or energy", method)
		}
		if v := easched.Verify(rep.Schedule, ts, cores, m); len(v) > 0 {
			t.Fatalf("%s: validator rejected schedule: %v", method, v[0])
		}
	}
}

func TestSolveMethodErrors(t *testing.T) {
	ts := solveWorkload(t, 10)
	m := easched.NewModel(3, 0.05)
	if _, err := easched.Solve(context.Background(),
		easched.Spec{Tasks: ts, Cores: 4, Model: m, Method: "bogus"}); err == nil {
		t.Fatal("unknown method accepted")
	}
	if _, err := easched.Solve(context.Background(),
		easched.Spec{Tasks: ts, Cores: 4, Model: m, Method: easched.MethodCapped}); err == nil {
		t.Fatal("capped without FrequencyCap accepted")
	}
}

func TestSolveCompareAndDiscrete(t *testing.T) {
	ts := solveWorkload(t, 20)
	m := easched.NewModel(3, 0.05)
	rep, err := easched.Solve(context.Background(), easched.Spec{
		Tasks: ts, Cores: 4, Model: m,
		Compare: true, Discrete: easched.IntelXScale(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Optimal == nil {
		t.Fatal("Compare did not fill Optimal")
	}
	// The heuristic can never beat the convex optimum by more than the
	// duality gap, so the normalized energy stays (numerically) >= 1.
	if rep.NEC < 1-1e-6 {
		t.Fatalf("NEC = %g < 1: heuristic beat the optimum", rep.NEC)
	}
	if rep.Quantized == nil {
		t.Fatal("Discrete did not fill Quantized")
	}
	if rep.Quantized.Missed {
		t.Fatalf("quantized schedule misses deadlines: tasks %v", rep.Quantized.MissedTasks)
	}
}

func TestSolvePreCanceledContext(t *testing.T) {
	ts := solveWorkload(t, 20)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := easched.Solve(ctx, easched.Spec{Tasks: ts, Cores: 4, Model: easched.NewModel(3, 0.05)})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestSolveCancellationPrompt cancels a large DER solve mid-flight and
// requires the call to return within cancelSlack of the cancellation —
// the PR-4 contract that a schedd timeout actually frees the worker.
func TestSolveCancellationPrompt(t *testing.T) {
	ts := solveWorkload(t, 500)
	spec := easched.Spec{Tasks: ts, Cores: 16, Model: easched.NewModel(3, 0.05)}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(2 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := easched.Solve(ctx, spec)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		// The solve may legitimately win the race on a fast machine.
		if err != nil {
			t.Fatalf("err = %v, want context.Canceled or nil", err)
		}
		t.Skip("solve finished before cancellation")
	}
	if elapsed > 2*time.Millisecond+cancelSlack {
		t.Fatalf("canceled solve returned after %v, want within %v of cancel", elapsed, cancelSlack)
	}
}

// TestSolveCompareCancellationPrompt does the same through the convex
// solver, whose iterations poll the context.
func TestSolveCompareCancellationPrompt(t *testing.T) {
	ts := solveWorkload(t, 200)
	spec := easched.Spec{Tasks: ts, Cores: 16, Model: easched.NewModel(3, 0.05), Compare: true}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := easched.Solve(ctx, spec)
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		if err != nil {
			t.Fatalf("err = %v, want context.Canceled or nil", err)
		}
		t.Skip("solve finished before cancellation")
	}
	if elapsed > 5*time.Millisecond+cancelSlack {
		t.Fatalf("canceled compare solve returned after %v, want within %v of cancel", elapsed, cancelSlack)
	}
}

func TestSolveBatchMatchesSolo(t *testing.T) {
	m := easched.NewModel(3, 0.05)
	rng := rand.New(rand.NewSource(7))
	specs := make([]easched.Spec, 8)
	for i := range specs {
		ts, err := easched.GenerateTasks(rng, easched.PaperWorkload(15))
		if err != nil {
			t.Fatal(err)
		}
		specs[i] = easched.Spec{Tasks: ts, Cores: 4, Model: m}
	}
	results := easched.SolveBatch(context.Background(), specs, 3)
	if len(results) != len(specs) {
		t.Fatalf("got %d results for %d specs", len(results), len(specs))
	}
	for i, r := range results {
		if r.Err != nil {
			t.Fatalf("item %d: %v", i, r.Err)
		}
		if r.Index != i {
			t.Fatalf("item %d reports index %d", i, r.Index)
		}
		solo, err := easched.Solve(context.Background(), specs[i])
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(r.Report.Energy-solo.Energy) > 1e-9*solo.Energy {
			t.Fatalf("item %d: batch energy %g != solo %g", i, r.Report.Energy, solo.Energy)
		}
	}
}

func TestSolveBatchCanceled(t *testing.T) {
	ts := solveWorkload(t, 10)
	specs := make([]easched.Spec, 4)
	for i := range specs {
		specs[i] = easched.Spec{Tasks: ts, Cores: 4, Model: easched.NewModel(3, 0.05)}
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for i, r := range easched.SolveBatch(ctx, specs, 2) {
		if !errors.Is(r.Err, context.Canceled) {
			t.Fatalf("item %d: err = %v, want context.Canceled", i, r.Err)
		}
	}
}

// TestSolveAllocRegression guards the PR-4 hot-path work: a warmed-up
// DER solve of the n=100, m=16 acceptance instance must stay within an
// allocation ceiling far below the ~11k allocs/op of the pre-PR code.
func TestSolveAllocRegression(t *testing.T) {
	ts := solveWorkload(t, 100)
	spec := easched.Spec{Tasks: ts, Cores: 16, Model: easched.NewModel(3, 0.05)}
	ctx := context.Background()
	if _, err := easched.Solve(ctx, spec); err != nil { // warm the solver pool
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(5, func() {
		if _, err := easched.Solve(ctx, spec); err != nil {
			t.Fatal(err)
		}
	})
	// Measured ~50 allocs/op after PR 4 (pre-PR: 10981). The ceiling
	// leaves ~4x headroom for runtime noise while still catching any
	// return to per-subinterval allocation.
	if avg > 200 {
		t.Fatalf("Solve(DER, n=100, m=16) allocates %.0f/op, ceiling 200", avg)
	}
}
