package easched

import (
	"context"

	"repro/internal/metamorphic"
	"repro/internal/task"
)

// --- Metamorphic conformance (internal/metamorphic) ---

// ConformReport is the outcome of a metamorphic conformance run: per-
// relation statistics, per-scheduler E/E^opt ratio statistics, and every
// relation violation found (with minimized reproducer instances when
// minimization is enabled).
type ConformReport = metamorphic.Report

// ConformViolation is one metamorphic relation breach.
type ConformViolation = metamorphic.Violation

// ConformOptions configures Conform; the zero value runs the full
// relation × generator × scheduler matrix at a default matrix size.
type ConformOptions = metamorphic.SuiteOptions

// ConformRelations returns the shipped metamorphic relation library —
// instance transformations paired with provable predicates on how energy
// must respond (translation invariance, exact scaling laws of
// p(f) = γf^α + p0, and monotonicity of E^opt in cores, deadlines, work
// and static power). Each relation's Justification states the
// mathematical argument.
func ConformRelations() []metamorphic.Relation { return metamorphic.Relations() }

// ConformRegimes returns the generator zoo the conformance matrix draws
// from: heavy-overlap, light-overlap, bursty, harmonic, near-zero-laxity
// and degenerate-singleton workload regimes.
func ConformRegimes() []task.Regime { return task.Regimes() }

// Conform runs the metamorphic conformance matrix: every registered
// scheduler (see Algorithms) is exercised over seeded instances from the
// generator zoo, each paired with transformed follow-up instances, and
// every relation's predicate is checked with solver-gap-aware tolerances.
// Where Verify certifies one schedule and CrossCheck one instance,
// Conform certifies the schedulers' *behavior under change* — the layer
// that catches systematic suboptimality and silent regressions that
// per-instance validation cannot.
//
// The run is fully deterministic in opts.Seed; any reported violation
// replays exactly. Violations are returned in the report, not as an
// error; err is reserved for infrastructure failures (cancellation,
// solver breakdown, bad options).
func Conform(ctx context.Context, opts ConformOptions) (*ConformReport, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return metamorphic.RunSuite(ctx, opts)
}
