// Command schedviz renders the paper's scheduling algorithms on a task
// set as ASCII Gantt charts: the final schedules of both allocation
// methods, their energies, the convex optimum for reference, and the
// discrete-event simulator's verdict.
//
// Usage:
//
//	schedviz                         # the paper's Section V.D example
//	schedviz -example fig1           # the introductory YDS example
//	schedviz -tasks workload.json -cores 4 -alpha 3 -p0 0.05
//	schedviz -width 100
//
// Task files are JSON arrays of {"release": r, "work": c, "deadline": d}
// (see cmd/taskgen).
package main

import (
	"fmt"
	"os"

	"repro/easched"
	"repro/internal/cliflag"
	"repro/internal/interval"
	"repro/internal/task"
	"repro/internal/trace"
)

func main() {
	fs := cliflag.New("schedviz")
	var (
		file    = fs.String("tasks", "", "JSON task file (default: built-in example)")
		example = fs.String("example", "sectionVD", "built-in example: sectionVD or fig1")
		cores   = fs.Int("cores", 4, "number of cores")
		alpha   = fs.Float64("alpha", 3, "dynamic power exponent α")
		p0      = fs.Float64("p0", 0, "static power p0")
		width   = fs.Int("width", 72, "Gantt chart width in columns")
		traceF  = fs.String("trace", "", "write the DER final schedule as a Chrome trace to this file")
		csvF    = fs.String("segcsv", "", "write the DER final schedule's segments as CSV to this file")
	)
	fs.Parse(os.Args[1:])

	ts, err := loadTasks(*file, *example)
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedviz: %v\n", err)
		os.Exit(1)
	}
	model := easched.NewModel(*alpha, *p0)

	fmt.Printf("workload: %d tasks, model %v, %d cores\n\n", len(ts), model, *cores)
	for _, tk := range ts {
		fmt.Printf("  %v  intensity %.3f\n", tk, tk.Intensity())
	}
	if d, err := interval.Decompose(ts, 1e-9); err == nil {
		peak, at := d.PeakLoad()
		fmt.Printf("\n%d subintervals; %.3g of %.3g time units heavily overlapped on %d cores\n",
			d.NumSubs(), d.TimeAboveCores(*cores), d.TotalLength(), *cores)
		fmt.Printf("peak aggregate intensity %.3f in [%g, %g]\n",
			peak, d.Subs[at].Start, d.Subs[at].End)
	}
	fmt.Println()

	even, der, err := easched.ScheduleBoth(ts, *cores, model)
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedviz: %v\n", err)
		os.Exit(1)
	}
	sol, err := easched.Optimal(ts, *cores, model)
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedviz: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("evenly allocating method: E^F1 = %.4f (intermediate %.4f)\n",
		even.FinalEnergy, even.IntermediateEnergy)
	fmt.Print(even.Final.Gantt(*width))
	fmt.Println()
	fmt.Printf("DER-based method:         E^F2 = %.4f (intermediate %.4f)\n",
		der.FinalEnergy, der.IntermediateEnergy)
	fmt.Print(der.Final.Gantt(*width))
	fmt.Println()
	fmt.Printf("convex optimum:           E^opt = %.4f (gap %.2g, %d iterations)\n",
		sol.Energy, sol.Gap, sol.Iterations)
	fmt.Printf("NEC: F1 = %.4f, F2 = %.4f\n\n", even.FinalEnergy/sol.Energy, der.FinalEnergy/sol.Energy)

	rep, err := easched.Simulate(der.Final, model)
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedviz: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("simulator: energy %.4f, %d preemptions, %d migrations, violations: %d\n",
		rep.Energy, rep.Preemptions, rep.Migrations, len(rep.Violations))
	for _, v := range rep.Violations {
		fmt.Printf("  ! %s\n", v)
	}

	if *traceF != "" {
		if err := writeFile(*traceF, func(w *os.File) error {
			return trace.WriteChrome(w, der.Final, 1e6)
		}); err != nil {
			fmt.Fprintf(os.Stderr, "schedviz: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote Chrome trace to %s (open in chrome://tracing)\n", *traceF)
	}
	if *csvF != "" {
		if err := writeFile(*csvF, func(w *os.File) error {
			return trace.WriteScheduleCSV(w, der.Final)
		}); err != nil {
			fmt.Fprintf(os.Stderr, "schedviz: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote segment CSV to %s\n", *csvF)
	}
}

func writeFile(path string, fill func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return fill(f)
}

func loadTasks(file, example string) (easched.TaskSet, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return task.Read(f)
	}
	switch example {
	case "sectionVD":
		return task.SectionVDExample(), nil
	case "fig1":
		return task.Fig1Example(), nil
	default:
		return nil, fmt.Errorf("unknown example %q (sectionVD, fig1)", example)
	}
}
