// Command crosscheck is a soak tester: it generates random instances and
// runs every scheduler in the repository against every independent
// oracle — the schedule validator, the discrete-event simulator, the
// max-flow feasibility analyzer, and the convex optimal solver — and
// reports any disagreement. Exit status is non-zero when anything fails,
// making it suitable as a CI job or an overnight soak.
//
// Usage:
//
//	crosscheck -n 200 -seed 1
//	crosscheck -n 50 -ntasks 30 -cores 6 -v
package main

import (
	"fmt"
	"math"
	"os"

	"repro/internal/check"
	"repro/internal/cliflag"
	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/online"
	"repro/internal/opt"
	"repro/internal/partition"
	"repro/internal/power"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/task"
	"repro/internal/yds"
)

var verbose bool

func main() {
	fs := cliflag.New("crosscheck")
	var (
		n     = fs.Int("n", 100, "number of random instances")
		seed  = fs.Int64("seed", 1, "base RNG seed")
		tasks = fs.Int("ntasks", 0, "tasks per instance (0 = random 5..25)")
		cores = fs.Int("cores", 0, "cores (0 = random 2..6)")
		vFlag = fs.Bool("v", false, "log each instance")
	)
	fs.Alias("ntasks", "tasks")
	fs.Parse(os.Args[1:])
	verbose = *vFlag

	stream := stats.NewStream(*seed)
	failures := 0
	for i := 0; i < *n; i++ {
		rng := stream.Rand(0, 0, i)
		nt := *tasks
		if nt == 0 {
			nt = 5 + rng.Intn(21)
		}
		m := *cores
		if m == 0 {
			m = 2 + rng.Intn(5)
		}
		pm := power.Unit(2+rng.Float64(), rng.Float64()*0.3)
		ts, err := task.Generate(rng, task.PaperDefaults(nt))
		if err != nil {
			fail(&failures, i, "generate: %v", err)
			continue
		}
		if err := checkInstance(ts, m, pm); err != nil {
			fail(&failures, i, "n=%d m=%d %v: %v", nt, m, pm, err)
			continue
		}
		if verbose {
			fmt.Printf("ok %4d: n=%d m=%d %v\n", i, nt, m, pm)
		}
	}
	if failures > 0 {
		fmt.Fprintf(os.Stderr, "crosscheck: %d of %d instances FAILED\n", failures, *n)
		os.Exit(1)
	}
	fmt.Printf("crosscheck: %d instances passed against all oracles\n", *n)
}

func fail(count *int, i int, format string, args ...any) {
	*count++
	fmt.Fprintf(os.Stderr, "FAIL %4d: %s\n", i, fmt.Sprintf(format, args...))
}

// checkInstance runs every scheduler and oracle on one instance.
func checkInstance(ts task.Set, m int, pm power.Model) error {
	d, err := interval.Decompose(ts, 1e-9)
	if err != nil {
		return err
	}
	sol, err := opt.Solve(d, m, pm, opt.Options{MaxIterations: 2000, RelGap: 1e-5})
	if err != nil {
		return fmt.Errorf("opt: %w", err)
	}
	slack := sol.Gap + 1e-6*sol.Energy

	type entry struct {
		name   string
		sched  *schedule.Schedule
		energy float64
	}
	var entries []entry

	suite, err := core.RunSuite(ts, m, pm, core.Options{Tolerance: 1e-9})
	if err != nil {
		return fmt.Errorf("core: %w", err)
	}
	entries = append(entries,
		entry{"I1", suite.Even.Intermediate, suite.Even.IntermediateEnergy},
		entry{"F1", suite.Even.Final, suite.Even.FinalEnergy},
		entry{"I2", suite.DER.Intermediate, suite.DER.IntermediateEnergy},
		entry{"F2", suite.DER.Final, suite.DER.FinalEnergy},
	)

	psched, pe, err := partition.Schedule(ts, m, pm)
	if err != nil {
		return fmt.Errorf("partition: %w", err)
	}
	entries = append(entries, entry{"partitioned", psched, pe})

	onl, err := online.ReplanDER(ts, m, pm)
	if err != nil {
		return fmt.Errorf("online: %w", err)
	}
	entries = append(entries, entry{"online", onl.Schedule, onl.Energy})

	optSched, err := opt.Realize(d, m, pm, sol)
	if err != nil {
		return fmt.Errorf("opt realize: %w", err)
	}
	entries = append(entries, entry{"optimal", optSched, sol.Energy})

	if m == 1 {
		ysched, _, err := yds.Schedule(ts)
		if err != nil {
			return fmt.Errorf("yds: %w", err)
		}
		entries = append(entries, entry{"yds", ysched, ysched.Energy(pm)})
	}

	for _, e := range entries {
		if errs := e.sched.Validate(1e-6, true); len(errs) > 0 {
			return fmt.Errorf("%s: validator: %v", e.name, errs[0])
		}
		copts := check.DefaultOptions()
		copts.ReportedEnergy = e.energy
		if res := check.Audit(e.sched, ts, m, pm, copts); len(res.Violations) > 0 {
			return fmt.Errorf("%s: universal validator: %v", e.name, res.Violations[0])
		}
		rep, err := sim.Run(e.sched, pm)
		if err != nil {
			return fmt.Errorf("%s: sim: %w", e.name, err)
		}
		if !rep.OK() {
			return fmt.Errorf("%s: sim violations: %v", e.name, rep.Violations[0])
		}
		if math.Abs(rep.Energy-e.energy) > 1e-5*math.Max(1, e.energy) {
			return fmt.Errorf("%s: sim energy %.6f != analytic %.6f", e.name, rep.Energy, e.energy)
		}
		if e.energy < sol.Energy-slack {
			return fmt.Errorf("%s: energy %.6f below certified optimum %.6f", e.name, e.energy, sol.Energy)
		}
	}
	return nil
}
