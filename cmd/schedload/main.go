// Command schedload is a closed-loop load generator for cmd/schedd: a
// fixed number of concurrent connections each issue POST /v1/schedule
// requests back-to-back, then the run reports throughput (req/s),
// latency percentiles (p50/p90/p99/max), response-code counts, cache-hit
// share, and — because every response is re-validated client-side with
// the universal schedule checker — validator failures, which must be
// zero.
//
// Usage:
//
//	schedload [-addr http://127.0.0.1:8080] [-c 16] [-duration 5s | -n 10000]
//	          [-algorithm S^F2] [-cores 4] [-alpha 3] [-p0 0.05]
//	          [-ntasks 20] [-distinct 16] [-seed 1] [-tasks FILE] [-no-verify]
//	          [-retries 0] [-tolerate-errors]
//
// Workloads are paper-default random instances by default (-ntasks tasks
// each, -distinct of them cycled round-robin, which also exercises the
// server's solve cache); -tasks FILE replays one fixed instance from a
// JSON or CSV file written by cmd/taskgen.
//
// With -retries > 0, transient failures (transport errors, 429, 502,
// 503, 504) are retried with capped exponential backoff plus jitter,
// honoring the server's Retry-After header — the client half of schedd's
// graceful-degradation contract. -tolerate-errors keeps exhausted HTTP
// errors from failing the run (for chaos soaks where some error budget
// is expected); validator failures always fail the run, because an
// invalid 200 is never acceptable.
//
// With -stream it instead drives the live dispatch runtime: N
// concurrent streaming sessions (-sessions), each fed a timed arrival
// trace (Poisson or bursty, from the generator zoo, or a taskgen
// -arrivals file via -trace) while consuming the session's SSE event
// stream, then closed with DELETE for the final report — whose realized
// schedule is re-validated client-side and whose per-session
// competitive ratio vs the clairvoyant optimum is aggregated:
//
//	schedload -stream -sessions 50 -process poisson -batches 20 -rate 0.5
//	schedload -stream -process bursty -debounce-ms 5 -regime harmonic
//
// With -reconnect (crash soak, against schedd -data-dir) broken SSE
// streams are resubscribed until the graceful terminator arrives, and
// replayed events — journal durability is at-least-once — are
// deduplicated by id, so a SIGKILL + restart of the server must still
// yield gapless event sequences and zero validator failures.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/check"
	"repro/internal/cliflag"
	"repro/internal/power"
	"repro/internal/schedule"
	"repro/internal/server/wire"
	"repro/internal/task"
)

// stats is one worker's tally; workers keep private stats and the main
// goroutine merges them, so the hot loop takes no locks.
type stats struct {
	ok, cached, verifyFail int64
	degraded, retried      int64
	codes                  map[int]int64
	latencies              []float64 // milliseconds
	firstErr               string
}

func main() {
	fs := cliflag.New("schedload")
	var (
		addr      = fs.String("addr", "http://127.0.0.1:8080", "schedd base URL")
		conc      = fs.Int("c", 16, "concurrent connections")
		duration  = fs.Duration("duration", 5*time.Second, "run length (ignored when -n > 0)")
		count     = fs.Int64("n", 0, "total requests (0 = run for -duration)")
		algorithm = fs.String("algorithm", "S^F2", "algorithm name (see GET /v1/algorithms)")
		cores     = fs.Int("cores", 4, "core count m")
		alpha     = fs.Float64("alpha", 3, "power-model exponent")
		p0        = fs.Float64("p0", 0.05, "power-model static term")
		gamma     = fs.Float64("gamma", 1, "power-model coefficient")
		ntasks    = fs.Int("ntasks", 20, "tasks per generated instance")
		distinct  = fs.Int("distinct", 16, "distinct generated instances cycled round-robin")
		seed      = fs.Int64("seed", 1, "workload RNG seed")
		tasksFile = fs.String("tasks", "", "replay one instance from a JSON/CSV file instead of generating")
		noVerify  = fs.Bool("no-verify", false, "skip client-side schedule validation")
		timeout   = fs.Duration("timeout", 10*time.Second, "per-request client timeout")
		retries   = fs.Int("retries", 0, "retry budget per request for transient failures (429/502/503/504/transport)")
		tolerate  = fs.Bool("tolerate-errors", false, "exit 0 despite HTTP errors (validator failures still fail the run)")

		stream     = fs.Bool("stream", false, "streaming-session mode: drive concurrent /v1/sessions lifecycles instead of one-shot solves")
		sessions   = fs.Int("sessions", 8, "concurrent streaming sessions (-stream)")
		process    = fs.String("process", "poisson", "arrival process per session: poisson or bursty (-stream)")
		batches    = fs.Int("batches", 20, "arrival batches per session (-stream)")
		rate       = fs.Float64("rate", 0.5, "mean batch-arrival rate per time unit (-stream)")
		batchLo    = fs.Int("batch-lo", 1, "min tasks per arrival batch (-stream)")
		batchHi    = fs.Int("batch-hi", 3, "max tasks per arrival batch (-stream)")
		regime     = fs.String("regime", "", "generator-zoo regime shaping batch contents (-stream)")
		debounceMS = fs.Float64("debounce-ms", 0, "server-side arrival-coalescing window (-stream)")
		traceFile  = fs.String("trace", "", "replay a taskgen -arrivals JSON trace in every session (-stream)")

		router    = fs.Bool("router", false, "cluster soak mode: the target is a schedrouter; retry through migrations (default -retries 4) and require gapless SSE ids")
		reconnect = fs.Bool("reconnect", false, "crash soak mode: resubscribe broken SSE streams and dedupe replayed events by id (-stream, use against schedd -data-dir)")
	)
	fs.Parse(os.Args[1:])

	// Cluster soak mode: migrations surface as transient 503s at the
	// router, so give the client a retry budget unless one was chosen.
	if *router {
		retriesSet := false
		fs.Visit(func(name string) { retriesSet = retriesSet || name == "retries" })
		if !retriesSet {
			*retries = 4
		}
	}

	if *stream {
		// One-shot solves default to the paper's S^F2; streaming sessions
		// default to the online ReplanDER policy unless -algorithm is set.
		algo := "ReplanDER"
		fs.Visit(func(name string) {
			if name == "algorithm" {
				algo = *algorithm
			}
		})
		pm := power.Model{Gamma: *gamma, Alpha: *alpha, P0: *p0}
		if err := pm.Validate(); err != nil {
			fatalf("%v", err)
		}
		os.Exit(runStream(streamConfig{
			addr:      *addr,
			sessions:  *sessions,
			algorithm: algo,
			cores:     *cores,
			model:     wire.ModelJSON{Gamma: *gamma, Alpha: *alpha, P0: *p0},
			pm:        pm,

			process:    *process,
			batches:    *batches,
			rate:       *rate,
			batchLo:    *batchLo,
			batchHi:    *batchHi,
			regime:     *regime,
			debounceMS: *debounceMS,
			traceFile:  *traceFile,

			seed:      *seed,
			noVerify:  *noVerify,
			retries:   *retries,
			tolerate:  *tolerate,
			timeout:   *timeout,
			reconnect: *reconnect,
		}))
	}

	pm := power.Model{Gamma: *gamma, Alpha: *alpha, P0: *p0}
	if err := pm.Validate(); err != nil {
		fatalf("%v", err)
	}
	instances, err := buildInstances(*tasksFile, *ntasks, *distinct, *seed)
	if err != nil {
		fatalf("%v", err)
	}

	// Pre-marshal every request body once; the hot loop only POSTs.
	bodies := make([][]byte, len(instances))
	for i, ts := range instances {
		b, err := json.Marshal(wire.ScheduleRequest{
			Algorithm: *algorithm, Cores: *cores,
			Model: wire.ModelJSON{Gamma: *gamma, Alpha: *alpha, P0: *p0},
			Tasks: ts,
		})
		if err != nil {
			fatalf("marshal: %v", err)
		}
		bodies[i] = b
	}

	client := &http.Client{
		Timeout: *timeout,
		Transport: &http.Transport{
			MaxIdleConns:        *conc,
			MaxIdleConnsPerHost: *conc,
		},
	}
	url := strings.TrimRight(*addr, "/") + "/v1/schedule"

	var issued atomic.Int64
	deadline := time.Now().Add(*duration)
	next := func() int64 {
		n := issued.Add(1)
		if *count > 0 {
			if n > *count {
				return -1
			}
			return n - 1
		}
		if time.Now().After(deadline) {
			return -1
		}
		return n - 1
	}

	fmt.Fprintf(os.Stderr, "schedload: %d conns -> %s algo=%s cores=%d instances=%d(%d tasks)\n",
		*conc, url, *algorithm, *cores, len(instances), len(instances[0]))

	all := make([]*stats, *conc)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < *conc; w++ {
		st := &stats{codes: make(map[int]int64)}
		all[w] = st
		// Per-worker jitter RNG: no locks in the hot loop.
		rng := rand.New(rand.NewSource(*seed + int64(w)*7919))
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := next()
				if i < 0 {
					return
				}
				k := int(i) % len(instances)
				shoot(client, url, bodies[k], instances[k], *cores, pm, *noVerify, *retries, rng, st)
			}
		}()
	}
	wg.Wait()
	elapsed := time.Since(start)

	report(all, elapsed)
	exit := 0
	for _, st := range all {
		if st.verifyFail > 0 {
			exit = 1 // an invalid 200 is never tolerable
		}
		if st.firstErr != "" && !*tolerate {
			exit = 1
		}
	}
	os.Exit(exit)
}

// retryableStatus reports whether an HTTP status is a transient failure
// worth retrying: admission pushback and gateway-style server errors.
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusBadGateway,
		http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// backoffWait computes the next retry delay: exponential from 50ms with
// full jitter, capped at 2s; an explicit server Retry-After wins.
func backoffWait(attempt int, retryAfter string, rng *rand.Rand) time.Duration {
	if retryAfter != "" {
		if secs, err := strconv.Atoi(retryAfter); err == nil && secs >= 0 {
			w := time.Duration(secs) * time.Second
			if w > 2*time.Second {
				w = 2 * time.Second
			}
			return w
		}
	}
	base := 50 * time.Millisecond << uint(attempt)
	if base > 2*time.Second {
		base = 2 * time.Second
	}
	return base/2 + time.Duration(rng.Int63n(int64(base/2)+1))
}

// shoot issues one request (with up to `retries` transient-failure
// retries) and records the final outcome into st.
func shoot(client *http.Client, url string, body []byte, ts task.Set, cores int, pm power.Model, noVerify bool, retries int, rng *rand.Rand, st *stats) {
	t0 := time.Now()
	var resp *http.Response
	var payload []byte
	var err error
	for attempt := 0; ; attempt++ {
		resp, err = client.Post(url, "application/json", bytes.NewReader(body))
		retryAfter := ""
		if err == nil {
			payload, err = io.ReadAll(resp.Body)
			resp.Body.Close()
			retryAfter = resp.Header.Get("Retry-After")
		}
		transient := err != nil || retryableStatus(resp.StatusCode)
		if !transient || attempt >= retries {
			break
		}
		st.retried++
		time.Sleep(backoffWait(attempt, retryAfter, rng))
	}
	lat := float64(time.Since(t0)) / float64(time.Millisecond)
	if err != nil {
		st.codes[-1]++
		if st.firstErr == "" {
			st.firstErr = err.Error()
		}
		return
	}
	st.codes[resp.StatusCode]++
	if resp.StatusCode != http.StatusOK {
		if st.firstErr == "" {
			var e wire.ErrorResponse
			_ = json.Unmarshal(payload, &e)
			st.firstErr = fmt.Sprintf("HTTP %d: %s", resp.StatusCode, e.Error)
		}
		return
	}
	var sr wire.ScheduleResponse
	if err := json.Unmarshal(payload, &sr); err != nil {
		st.codes[-1]++
		if st.firstErr == "" {
			st.firstErr = fmt.Sprintf("bad response body: %v", err)
		}
		return
	}
	st.ok++
	st.latencies = append(st.latencies, lat)
	if sr.Cached {
		st.cached++
	}
	if sr.Degraded {
		st.degraded++
	}
	if !noVerify {
		sched := schedule.New(ts, cores)
		for _, seg := range sr.Segments {
			sched.Add(schedule.Segment{
				Task: seg.Task, Core: seg.Core,
				Start: seg.Start, End: seg.End, Frequency: seg.Frequency,
			})
		}
		if violations := check.Validate(sched, ts, cores, pm); len(violations) > 0 {
			st.verifyFail++
			if st.firstErr == "" {
				st.firstErr = fmt.Sprintf("validator: %v", violations[0])
			}
		}
	}
}

// buildInstances loads the fixed instance from file, or generates
// `distinct` paper-default workloads of n tasks each.
func buildInstances(file string, n, distinct int, seed int64) ([]task.Set, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		var ts task.Set
		if strings.EqualFold(filepath.Ext(file), ".csv") {
			ts, err = task.ReadCSV(f)
		} else {
			ts, err = task.Read(f)
		}
		if err != nil {
			return nil, err
		}
		return []task.Set{ts}, nil
	}
	if distinct < 1 {
		distinct = 1
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]task.Set, 0, distinct)
	for i := 0; i < distinct; i++ {
		ts, err := task.Generate(rng, task.PaperDefaults(n))
		if err != nil {
			return nil, err
		}
		out = append(out, ts)
	}
	return out, nil
}

// report merges worker tallies and prints the run summary.
func report(all []*stats, elapsed time.Duration) {
	var ok, cached, verifyFail, degraded, retried int64
	codes := make(map[int]int64)
	var lats []float64
	firstErr := ""
	for _, st := range all {
		ok += st.ok
		cached += st.cached
		verifyFail += st.verifyFail
		degraded += st.degraded
		retried += st.retried
		for c, n := range st.codes {
			codes[c] += n
		}
		lats = append(lats, st.latencies...)
		if firstErr == "" {
			firstErr = st.firstErr
		}
	}
	sort.Float64s(lats)
	q := func(p float64) float64 {
		if len(lats) == 0 {
			return 0
		}
		i := int(p * float64(len(lats)-1))
		return lats[i]
	}
	var errs int64
	for c, n := range codes {
		if c != http.StatusOK {
			errs += n
		}
	}
	fmt.Printf("requests:   %d ok, %d errors, %d validator failures\n", ok, errs, verifyFail)
	fmt.Printf("throughput: %.1f req/s over %s\n", float64(ok)/elapsed.Seconds(), elapsed.Round(time.Millisecond))
	if len(lats) > 0 {
		fmt.Printf("latency ms: p50=%.3f p90=%.3f p99=%.3f max=%.3f\n", q(0.50), q(0.90), q(0.99), lats[len(lats)-1])
	}
	if ok > 0 {
		fmt.Printf("cache:      %d hits (%.1f%% of ok responses)\n", cached, 100*float64(cached)/float64(ok))
	}
	if degraded > 0 {
		fmt.Printf("degraded:   %d responses served by the fallback chain (%.1f%% of ok)\n",
			degraded, 100*float64(degraded)/float64(ok))
	}
	if retried > 0 {
		fmt.Printf("retries:    %d transient failures retried\n", retried)
	}
	if len(codes) > 1 || codes[http.StatusOK] == 0 {
		keys := make([]int, 0, len(codes))
		for c := range codes {
			keys = append(keys, c)
		}
		sort.Ints(keys)
		for _, c := range keys {
			label := fmt.Sprintf("HTTP %d", c)
			if c == -1 {
				label = "transport error"
			}
			fmt.Printf("  %-16s %d\n", label, codes[c])
		}
	}
	if firstErr != "" {
		fmt.Printf("first error: %s\n", firstErr)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "schedload: "+format+"\n", args...)
	os.Exit(2)
}
