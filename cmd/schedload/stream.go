package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/check"
	"repro/internal/power"
	"repro/internal/schedule"
	"repro/internal/server/wire"
	"repro/internal/task"
)

// streamConfig carries the -stream mode's knobs from main.
type streamConfig struct {
	addr      string
	sessions  int
	algorithm string
	cores     int
	model     wire.ModelJSON
	pm        power.Model

	process    string // poisson | bursty
	batches    int
	rate       float64
	batchLo    int
	batchHi    int
	regime     string
	debounceMS float64
	traceFile  string // replay one taskgen -arrivals trace in every session

	seed      int64
	noVerify  bool
	retries   int
	tolerate  bool
	timeout   time.Duration
	reconnect bool // resubscribe broken SSE streams, dedupe by event id
}

// sessionOutcome is one session's tally.
type sessionOutcome struct {
	id          string
	tasks       int
	admitted    int
	shed        int
	replans     int
	completed   int
	missed      int
	violations  int
	ratio       float64 // 0 when the optimum was skipped or failed
	events      int
	seqGaps     int // SSE id discontinuities (must be 0, even across migrations)
	finalEvent  bool
	streamClean bool
	err         string // written by driveSession only
	sseErr      string // written by the consumeSSE goroutine only

	// subscribed tracks whether the SSE consumer currently holds a live
	// subscription (-reconnect): driveSession waits on it before DELETE
	// so the final event lands on a stream instead of racing teardown.
	subscribed atomic.Bool
	// finished is set once DELETE returned the final report
	// (-reconnect): a 404 on resubscribe after that is our own
	// teardown, not a lost session.
	finished atomic.Bool
}

// runStream drives N concurrent streaming sessions end to end: create,
// feed a timed arrival trace, consume the SSE event stream, then DELETE
// for the final report, which is re-validated client-side with the
// universal schedule checker. Returns the process exit code.
func runStream(cfg streamConfig) int {
	traces, err := buildTraces(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "schedload: %d streaming sessions -> %s algo=%s cores=%d arrivals=%s batches=%d rate=%g\n",
		cfg.sessions, cfg.addr, cfg.algorithm, cfg.cores, cfg.process, cfg.batches, cfg.rate)

	// One pooled client for the request/response endpoints; SSE streams
	// get an un-timeouted client so long sessions aren't cut off.
	client := &http.Client{
		Timeout: cfg.timeout,
		Transport: &http.Transport{
			MaxIdleConns:        cfg.sessions * 2,
			MaxIdleConnsPerHost: cfg.sessions * 2,
		},
	}
	sseClient := &http.Client{Transport: client.Transport}

	outcomes := make([]*sessionOutcome, cfg.sessions)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.sessions; i++ {
		out := &sessionOutcome{}
		outcomes[i] = out
		rng := rand.New(rand.NewSource(cfg.seed + int64(i)*104729))
		tr := traces[i%len(traces)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			driveSession(cfg, client, sseClient, tr, rng, out)
		}()
	}
	wg.Wait()
	return reportStream(outcomes, time.Since(start), cfg.tolerate)
}

// buildTraces loads the replay trace or generates one per session.
func buildTraces(cfg streamConfig) ([]task.Trace, error) {
	if cfg.traceFile != "" {
		f, err := os.Open(cfg.traceFile)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		tr, err := task.ReadTrace(f)
		if err != nil {
			return nil, err
		}
		return []task.Trace{tr}, nil
	}
	p := task.ArrivalParams{
		Process: task.ArrivalProcess(cfg.process),
		Batches: cfg.batches,
		Rate:    cfg.rate,
		BatchLo: cfg.batchLo,
		BatchHi: cfg.batchHi,
	}
	if cfg.regime != "" {
		r, err := task.ParseRegime(cfg.regime)
		if err != nil {
			return nil, err
		}
		p.Regime = r
	}
	rng := rand.New(rand.NewSource(cfg.seed))
	out := make([]task.Trace, cfg.sessions)
	for i := range out {
		tr, err := task.GenerateTrace(rng, p)
		if err != nil {
			return nil, err
		}
		out[i] = tr
	}
	return out, nil
}

// postJSON POSTs a JSON body with transient-failure retries and decodes
// a 2xx response into v. Non-2xx bodies become errors.
func postJSON(cfg streamConfig, client *http.Client, rng *rand.Rand, method, url string, body []byte, v any, out *sessionOutcome) (int, error) {
	var lastStatus int
	var lastErr error
	for attempt := 0; ; attempt++ {
		req, err := http.NewRequest(method, url, bytes.NewReader(body))
		if err != nil {
			return 0, err
		}
		if body != nil {
			req.Header.Set("Content-Type", "application/json")
		}
		resp, err := client.Do(req)
		retryHdr := ""
		var payload []byte
		if err == nil {
			payload, err = io.ReadAll(resp.Body)
			resp.Body.Close()
			retryHdr = resp.Header.Get("Retry-After")
			lastStatus = resp.StatusCode
		}
		lastErr = err
		transient := err != nil || retryableStatus(lastStatus)
		if err == nil && !retryableStatus(lastStatus) {
			if lastStatus/100 != 2 {
				var e wire.ErrorResponse
				_ = json.Unmarshal(payload, &e)
				return lastStatus, fmt.Errorf("HTTP %d: %s", lastStatus, e.Error)
			}
			if v != nil {
				if err := json.Unmarshal(payload, v); err != nil {
					return lastStatus, fmt.Errorf("bad response body: %v", err)
				}
			}
			return lastStatus, nil
		}
		if !transient || attempt >= cfg.retries {
			if lastErr != nil {
				return 0, lastErr
			}
			var e wire.ErrorResponse
			_ = json.Unmarshal(payload, &e)
			return lastStatus, fmt.Errorf("HTTP %d: %s", lastStatus, e.Error)
		}
		time.Sleep(backoffWait(attempt, retryHdr, rng))
	}
}

// driveSession runs one full session lifecycle against the server.
func driveSession(cfg streamConfig, client, sseClient *http.Client, tr task.Trace, rng *rand.Rand, out *sessionOutcome) {
	base := strings.TrimRight(cfg.addr, "/")
	createBody, _ := json.Marshal(wire.SessionCreateRequest{
		Algorithm:  cfg.algorithm,
		Cores:      cfg.cores,
		Model:      cfg.model,
		DebounceMS: cfg.debounceMS,
	})
	var created wire.SessionCreateResponse
	if _, err := postJSON(cfg, client, rng, http.MethodPost, base+"/v1/sessions", createBody, &created, out); err != nil {
		out.err = fmt.Sprintf("create: %v", err)
		return
	}
	out.id = created.ID

	// SSE consumer: counts events and watches for the final report; the
	// stream must end cleanly (server-side close) after DELETE. Every
	// exit path joins the consumer before returning — it writes to out,
	// which the caller reads after the WaitGroup drains.
	sseCtx, sseCancel := context.WithCancel(context.Background())
	sseDone := make(chan struct{})
	go func() {
		defer close(sseDone)
		consumeSSE(sseCtx, cfg, sseClient, base+"/v1/sessions/"+created.ID+"/events", out)
	}()
	defer func() {
		sseCancel()
		<-sseDone
	}()

	for _, a := range tr {
		out.tasks += len(a.Tasks)
		body, _ := json.Marshal(wire.ArrivalRequest{At: a.At, Tasks: a.Tasks})
		var ar wire.ArrivalResponse
		status, err := postJSON(cfg, client, rng, http.MethodPost, base+"/v1/sessions/"+created.ID+"/tasks", body, &ar, out)
		if err != nil {
			// 429 with all tasks shed still carries a JSON body, but after
			// retry exhaustion it lands here; count it as shedding.
			if status == http.StatusTooManyRequests {
				out.shed += len(a.Tasks)
				continue
			}
			out.err = fmt.Sprintf("arrive: %v", err)
			return
		}
		out.admitted += ar.Admitted
		out.shed += ar.Shed
	}

	if cfg.reconnect {
		// A crash may have severed the event stream. Wait for the
		// consumer to resubscribe before finishing the session: the
		// final event and the graceful terminator only land on a live
		// stream, and a resubscribe after the DELETE would find the
		// session gone (404).
		deadline := time.Now().Add(cfg.timeout)
		for !out.subscribed.Load() && time.Now().Before(deadline) {
			time.Sleep(20 * time.Millisecond)
		}
	}

	// DELETE runs the retroactive clairvoyant-optimum solve, which can
	// far outlast the per-request timeout under many concurrent
	// sessions; use the untimeouted client so a slow finish is not cut
	// off, retried, and met with 404 (the first attempt having already
	// removed the session server-side).
	var final wire.SessionFinalResponse
	if _, err := postJSON(cfg, sseClient, rng, http.MethodDelete, base+"/v1/sessions/"+created.ID, nil, &final, out); err != nil {
		out.err = fmt.Sprintf("finish: %v", err)
		return
	}
	out.finished.Store(true)
	out.replans = final.Replans
	out.completed = final.Completed
	out.missed = len(final.Missed)
	out.ratio = final.CompetitiveRatio
	out.violations = len(final.Violations)

	if !cfg.noVerify && len(final.Tasks) > 0 {
		// Re-validate the realized schedule client-side, exactly like the
		// one-shot path: server-reported violations are not trusted to be
		// the whole story.
		sched := schedule.New(final.Tasks, final.Cores)
		for _, seg := range final.Segments {
			sched.Add(schedule.Segment{
				Task: seg.Task, Core: seg.Core,
				Start: seg.Start, End: seg.End, Frequency: seg.Frequency,
			})
		}
		if violations := check.Validate(sched, final.Tasks, final.Cores, cfg.pm); len(violations) > 0 {
			out.violations += len(violations)
			if out.err == "" {
				out.err = fmt.Sprintf("validator: %v", violations[0])
			}
		}
	}

	// The DELETE closed the session server-side; its stream must end.
	select {
	case <-sseDone:
	case <-time.After(cfg.timeout):
		out.err = "SSE stream did not close after DELETE"
	}
}

// consumeSSE reads a text/event-stream until the server closes it (or
// ctx cancels the subscription), tallying events into out. With
// cfg.reconnect it treats a broken connection as transient — the server
// crashed and will come back with the session recovered from its
// journal — and resubscribes until the graceful terminator arrives.
// Journal durability is at-least-once: the recovered stream replays
// history the client already saw, so replayed ids (id <= lastID) are
// deduplicated rather than counted as sequence errors.
func consumeSSE(ctx context.Context, cfg streamConfig, client *http.Client, url string, out *sessionOutcome) {
	var lastID int64
	for {
		ok, retryable := consumeSSEOnce(ctx, client, url, out, &lastID, cfg.reconnect)
		if ok || !cfg.reconnect || !retryable || ctx.Err() != nil {
			return
		}
		select {
		case <-ctx.Done():
			return
		case <-time.After(100 * time.Millisecond):
		}
	}
}

// consumeSSEOnce is one SSE subscription attempt. ok reports the stream
// ended with the graceful terminator; retryable reports a failure mode
// worth resubscribing after (connection refused/broken, 5xx) as opposed
// to a definitive one (404: the session is gone).
func consumeSSEOnce(ctx context.Context, client *http.Client, url string, out *sessionOutcome, lastID *int64, dedupe bool) (ok, retryable bool) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		out.sseErr = fmt.Sprintf("events: %v", err)
		return false, false
	}
	resp, err := client.Do(req)
	if err != nil {
		if ctx.Err() == nil {
			out.sseErr = fmt.Sprintf("events: %v", err)
		}
		return false, true
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound && dedupe && out.finished.Load() {
		// Our own DELETE tore the session down and the crash ate the
		// stream's tail before it could be replayed. Completion is
		// confirmed out-of-band: the DELETE response carried the full
		// final report (a superset of the final event), so the stream
		// counts as terminated cleanly rather than lost.
		out.streamClean = true
		out.finalEvent = true
		out.sseErr = ""
		return true, false
	}
	if resp.StatusCode != http.StatusOK {
		out.sseErr = fmt.Sprintf("events: HTTP %d", resp.StatusCode)
		// In reconnect mode a 404 can be the transient gap between the
		// server-side teardown and our DELETE response landing; keep
		// retrying, the finished flag resolves it next attempt.
		return false, dedupe || resp.StatusCode != http.StatusNotFound
	}
	out.subscribed.Store(true)
	defer out.subscribed.Store(false)
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	var data []byte
	var id int64
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "id: "):
			id, _ = strconv.ParseInt(strings.TrimPrefix(line, "id: "), 10, 64)
		case strings.HasPrefix(line, "data: "):
			data = []byte(strings.TrimPrefix(line, "data: "))
		case strings.HasPrefix(line, ": stream closed"):
			out.streamClean = true
		case line == "" && data != nil:
			if dedupe && id <= *lastID {
				data = nil // replayed history after a resubscribe
				continue
			}
			// Event ids must be gapless 1,2,3,... — both from schedd
			// directly and through the router across a migration; a skip
			// means a lost event, a repeat means a duplicated one.
			if id != *lastID+1 {
				out.seqGaps++
			}
			*lastID = id
			var ev wire.SessionEvent
			if json.Unmarshal(data, &ev) == nil {
				out.events++
				if ev.Type == "final" {
					out.finalEvent = true
				}
			}
			data = nil
		}
	}
	// EOF without a terminal comment means the connection dropped rather
	// than the session closing; streamClean stays false (unless a
	// resubscribe later sees the terminator).
	if out.streamClean {
		out.sseErr = "" // earlier transient failures were recovered from
		return true, false
	}
	return false, true
}

// reportStream prints the aggregate summary and returns the exit code.
func reportStream(outcomes []*sessionOutcome, elapsed time.Duration, tolerate bool) int {
	var sessionsOK, tasks, admitted, shed, replans, completed, missed, violations, events int
	var dirtyStreams, noFinal, seqGaps int
	var ratios []float64
	firstErr := ""
	for _, o := range outcomes {
		tasks += o.tasks
		admitted += o.admitted
		shed += o.shed
		replans += o.replans
		completed += o.completed
		missed += o.missed
		violations += o.violations
		events += o.events
		seqGaps += o.seqGaps
		errMsg := o.err
		if errMsg == "" {
			errMsg = o.sseErr
		}
		if errMsg == "" {
			sessionsOK++
		} else if firstErr == "" {
			firstErr = fmt.Sprintf("session %s: %s", o.id, errMsg)
		}
		if !o.streamClean {
			dirtyStreams++
		}
		if !o.finalEvent {
			noFinal++
		}
		if o.ratio > 0 && !math.IsInf(o.ratio, 0) {
			ratios = append(ratios, o.ratio)
		}
	}
	fmt.Printf("sessions:   %d ok / %d total over %s\n", sessionsOK, len(outcomes), elapsed.Round(time.Millisecond))
	fmt.Printf("tasks:      %d sent, %d admitted, %d shed, %d completed, %d missed deadlines\n",
		tasks, admitted, shed, completed, missed)
	fmt.Printf("replans:    %d total (%.1f per session)\n", replans, float64(replans)/float64(len(outcomes)))
	fmt.Printf("events:     %d received, %d seq gaps, %d sessions without final event, %d streams closed uncleanly\n",
		events, seqGaps, noFinal, dirtyStreams)
	fmt.Printf("validator:  %d failures\n", violations)
	if len(ratios) > 0 {
		sort.Float64s(ratios)
		var sum float64
		for _, r := range ratios {
			sum += r
		}
		fmt.Printf("ratio:      min=%.4f mean=%.4f max=%.4f (realized / clairvoyant optimum, %d sessions)\n",
			ratios[0], sum/float64(len(ratios)), ratios[len(ratios)-1], len(ratios))
	}
	if firstErr != "" {
		fmt.Printf("first error: %s\n", firstErr)
	}

	// An invalid schedule, a missed deadline, or an SSE sequence gap is
	// never tolerable; other failures respect -tolerate-errors.
	if violations > 0 || missed > 0 || seqGaps > 0 {
		return 1
	}
	if (sessionsOK < len(outcomes) || dirtyStreams > 0 || noFinal > 0) && !tolerate {
		return 1
	}
	return 0
}
