// Command energysim regenerates the paper's evaluation: every table and
// figure of Li & Wu, "Energy-Aware Scheduling for Aperiodic Tasks on
// Multi-core Processors" (ICPP 2014), plus the ablations documented in
// DESIGN.md.
//
// Usage:
//
//	energysim -list
//	energysim -exp fig6 [-reps 100] [-seed 20140901] [-workers 8]
//	energysim -all [-reps 25]
//	energysim -exp fig11 -quick
//	energysim -custom sweep.json -reps 50
//
// Output is an aligned text table per experiment: one row per sweep
// point, one column per approach (NEC means), with miss-rate columns for
// the practical-processor experiments.
package main

import (
	"context"
	"errors"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/cliflag"
	"repro/internal/experiments"
	"repro/internal/opt"
	"repro/internal/plot"
	"repro/internal/report"
	"repro/internal/trace"
)

func main() {
	fs := cliflag.New("energysim")
	var (
		list    = fs.Bool("list", false, "list available experiments and exit")
		exp     = fs.String("exp", "", "experiment ID to run (see -list)")
		all     = fs.Bool("all", false, "run every registered experiment")
		reps    = fs.Int("reps", 100, "replications per sweep point")
		seed    = fs.Int64("seed", 20140901, "base RNG seed")
		workers = fs.Int("workers", 0, "parallel replications (0 = GOMAXPROCS)")
		quick   = fs.Bool("quick", false, "fast mode: 10 replications, looser optimal solver")
		optIter = fs.Int("opt-iters", 3000, "Frank-Wolfe iteration cap for the optimal solver")
		optGap  = fs.Float64("opt-gap", 1e-5, "relative duality-gap target for the optimal solver")
		doPlot  = fs.Bool("plot", false, "render an ASCII line chart under each table")
		csvDir  = fs.String("csv", "", "directory to write per-experiment CSV files into")
		mdFile  = fs.String("md", "", "append a Markdown section per experiment to this file")
		custom  = fs.String("custom", "", "run a custom sweep from a JSON config file (see experiments.CustomSweep)")
	)
	fs.Parse(os.Args[1:])

	if *list {
		for _, d := range experiments.All() {
			fmt.Printf("%-20s %s\n", d.ID, d.Title)
		}
		return
	}

	// Ctrl-C (or SIGTERM) cancels the sweep: replication pools stop
	// launching work, in-flight replications drain, and we exit 130
	// instead of running the remaining replications to completion.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := experiments.Config{
		Replications: *reps,
		Seed:         *seed,
		Workers:      *workers,
		Opt:          opt.Options{MaxIterations: *optIter, RelGap: *optGap},
	}
	if *quick {
		cfg = experiments.Quick()
		cfg.Seed = *seed
	}
	cfg.Context = ctx

	opts := outputOptions{plot: *doPlot, csvDir: *csvDir, mdFile: *mdFile}
	switch {
	case *custom != "":
		f, err := os.Open(*custom)
		if err != nil {
			fmt.Fprintf(os.Stderr, "energysim: %v\n", err)
			os.Exit(2)
		}
		sweep, err := experiments.ReadCustomSweep(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "energysim: %v\n", err)
			os.Exit(2)
		}
		d := experiments.Descriptor{
			ID:    sweep.Name,
			Title: "custom sweep",
			Run:   func(cfg experiments.Config) (*experiments.Result, error) { return experiments.RunCustom(cfg, sweep) },
		}
		exitOnErr(d.ID, runOne(d, cfg, opts))
	case *all:
		for _, d := range experiments.All() {
			exitOnErr(d.ID, runOne(d, cfg, opts))
		}
	case *exp != "":
		d, err := experiments.Lookup(*exp)
		if err != nil {
			fmt.Fprintf(os.Stderr, "energysim: %v\n", err)
			os.Exit(2)
		}
		exitOnErr(d.ID, runOne(d, cfg, opts))
	default:
		fs.Usage()
		os.Exit(2)
	}
}

// exitOnErr reports a failed experiment and exits: 130 for an interrupt
// (so shells see the conventional SIGINT status), 1 otherwise.
func exitOnErr(id string, err error) {
	if err == nil {
		return
	}
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "energysim: interrupted")
		os.Exit(130)
	}
	fmt.Fprintf(os.Stderr, "energysim: %s: %v\n", id, err)
	os.Exit(1)
}

type outputOptions struct {
	plot   bool
	csvDir string
	mdFile string
}

func runOne(d experiments.Descriptor, cfg experiments.Config, opts outputOptions) error {
	start := time.Now()
	res, err := d.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Print(res.Table())
	if opts.plot {
		fmt.Print(plot.Render(res, plot.Options{}))
	}
	if opts.csvDir != "" {
		if err := writeCSV(opts.csvDir, res); err != nil {
			return err
		}
	}
	if opts.mdFile != "" {
		f, err := os.OpenFile(opts.mdFile, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			return err
		}
		_, err = f.WriteString(report.Markdown(res))
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("# appended markdown to %s\n", opts.mdFile)
	}
	fmt.Printf("# elapsed: %v\n\n", time.Since(start).Round(time.Millisecond))
	return nil
}

func writeCSV(dir string, res *experiments.Result) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, res.ID+".csv")
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := trace.WriteCSV(f, res); err != nil {
		return err
	}
	fmt.Printf("# wrote %s\n", path)
	return nil
}
