// Command schedrouter is the cluster routing tier: a single HTTP front
// door for a fleet of schedd backends (see internal/cluster).
//
// Usage:
//
//	schedrouter -backends http://127.0.0.1:8081,http://127.0.0.1:8082 \
//	    [-addr :8080] [-timeout 10s] [-health-interval 500ms]
//	    [-health-failures 2] [-retries N] [-breaker-threshold 5]
//	    [-breaker-cooldown 2s] [-breaker-max-cooldown 30s]
//	    [-grace 5s] [-recovery-grace 0] [-quiet]
//
// One-shot solves (/v1/schedule, /v1/schedule/batch, /v1/feasible) are
// load-balanced across healthy backends with bounded retries behind
// per-backend circuit breakers. Streaming sessions are sharded by
// rendezvous hashing on the session ID; when a backend fails its
// readyz probes, its sessions migrate to the next backend in their
// preference order via the dispatch snapshot/restore path, and SSE
// streams resume with no client-visible sequence gaps. With
// -recovery-grace set the router instead waits up to that long for the
// backend to come back with its journaled sessions (schedd -data-dir)
// and re-adopts them in place, preserving the committed prefix exactly.
//
// Endpoints mirror schedd's v1 surface plus the router's own /healthz,
// /readyz (503 while draining or with zero healthy backends), and
// /metrics (per-backend counters, breaker states, migration totals,
// proxy latency histogram).
//
// SIGINT/SIGTERM drain gracefully: new work is rejected with 503,
// streams are closed with the SSE terminator, and in-flight proxies
// get the grace timeout to finish.
package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cliflag"
	"repro/internal/cluster"
)

func main() {
	fs := cliflag.New("schedrouter")
	var (
		addr        = fs.String("addr", ":8080", "listen address")
		backends    = fs.String("backends", "", "comma-separated schedd base URLs (required)")
		timeout     = fs.Duration("timeout", 10*time.Second, "per-proxied-request deadline (streams exempt)")
		healthIv    = fs.Duration("health-interval", 500*time.Millisecond, "backend readyz polling period")
		healthFails = fs.Int("health-failures", 2, "consecutive readyz failures that mark a backend down")
		retries     = fs.Int("retries", 0, "extra backends tried per one-shot request (0 = all others)")
		brThreshold = fs.Int("breaker-threshold", 0, "consecutive proxy failures that open a backend's breaker (0 = default 5, negative disables)")
		brCooldown  = fs.Duration("breaker-cooldown", 0, "initial open-breaker cooldown (0 = default 2s)")
		brMax       = fs.Duration("breaker-max-cooldown", 0, "cap on the growing cooldown (0 = default 30s)")
		grace       = fs.Duration("grace", 5*time.Second, "drain timeout on shutdown")
		recovGrace  = fs.Duration("recovery-grace", 0, "wait this long for a down backend to restart with its journaled sessions before migrating them (0 = migrate immediately)")
		quiet       = fs.Bool("quiet", false, "suppress router log lines")
	)
	fs.Parse(os.Args[1:])

	var list []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			list = append(list, b)
		}
	}
	if len(list) == 0 {
		fmt.Fprintln(os.Stderr, "schedrouter: -backends is required")
		fs.Usage()
		os.Exit(2)
	}

	logOut := io.Writer(os.Stderr)
	if *quiet {
		logOut = io.Discard
	}
	logger := log.New(logOut, "schedrouter ", log.LstdFlags|log.Lmicroseconds)

	rt, err := cluster.New(cluster.Config{
		Addr:               *addr,
		Backends:           list,
		Timeout:            *timeout,
		HealthInterval:     *healthIv,
		HealthFailures:     *healthFails,
		Retries:            *retries,
		BreakerThreshold:   *brThreshold,
		BreakerCooldown:    *brCooldown,
		BreakerMaxCooldown: *brMax,
		GraceTimeout:       *grace,
		RecoveryGrace:      *recovGrace,
		Logger:             logger,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedrouter: %v\n", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	fmt.Fprintf(os.Stderr, "schedrouter: listening on %s (backends=%d timeout=%s health=%s/%d)\n",
		*addr, len(list), *timeout, *healthIv, *healthFails)
	if err := rt.ListenAndServe(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "schedrouter: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "schedrouter: bye")
}
