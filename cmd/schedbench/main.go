// Command schedbench runs the repository's fixed solver benchmark
// matrix (algorithms × instance sizes) with testing.Benchmark and writes
// a machine-readable JSON report, so every PR leaves a comparable
// performance data point (BENCH_pr4.json, BENCH_pr5.json, ...) at the
// repo root and regressions show up as a broken trajectory rather than
// an anecdote.
//
// Usage:
//
//	schedbench [-out BENCH.json] [-prev PREV.json] [-quick] [-note TEXT]
//
// The matrix solves the paper-default workload (seed 20140901, unit
// model p(f) = f³ + 0.05):
//
//	der/n=20/m=4     DER subinterval pipeline (S^I2/S^F2), small
//	der/n=100/m=16   ... medium (the acceptance-gate instance)
//	der/n=500/m=16   ... large
//	even/n=100/m=16  evenly allocating pipeline (S^I1/S^F1)
//	opt/n=20/m=4     convex optimum (Frank-Wolfe, 400 iter, 1e-5 gap)
//	opt/n=100/m=16   ...
//	batch/der/n=20x16/m=4  SolveBatch over 16 distinct instances
//
// -quick keeps only the small cases (CI smoke). -prev loads a previous
// report whose results become the baseline block of the new file, with
// per-case speedup (baseline ns / current ns) and alloc ratio (current
// allocs / baseline allocs) comparisons for every case present in both.
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/easched"
	"repro/internal/cliflag"
	"repro/internal/interval"
	"repro/internal/opt"
	"repro/internal/power"
	"repro/internal/task"
)

// benchSeed pins the workload so every run and every PR measures the
// same instances.
const benchSeed = 20140901

// Result is one benchmark measurement.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// Comparison relates one case to the baseline run.
type Comparison struct {
	Name string `json:"name"`
	// Speedup is baseline ns/op divided by current ns/op (> 1 is faster).
	Speedup float64 `json:"speedup"`
	// AllocRatio is current allocs/op divided by baseline allocs/op
	// (< 1 is leaner).
	AllocRatio float64 `json:"alloc_ratio"`
}

// Baseline is the prior run embedded for comparison.
type Baseline struct {
	Source  string   `json:"source"`
	Results []Result `json:"results"`
}

// Report is the schema of BENCH_*.json.
type Report struct {
	Schema     int          `json:"schema"`
	Generated  string       `json:"generated"`
	GoVersion  string       `json:"go_version"`
	GOOS       string       `json:"goos"`
	GOARCH     string       `json:"goarch"`
	Note       string       `json:"note,omitempty"`
	Quick      bool         `json:"quick,omitempty"`
	Results    []Result     `json:"results"`
	Baseline   *Baseline    `json:"baseline,omitempty"`
	Comparison []Comparison `json:"comparison,omitempty"`
}

type benchCase struct {
	name  string
	quick bool // included in -quick runs
	run   func(b *testing.B)
}

func main() {
	fs := cliflag.New("schedbench")
	var (
		out   = fs.String("o", "BENCH_pr4.json", "output JSON path")
		prev  = fs.String("prev", "", "previous report whose results become the baseline block")
		quick = fs.Bool("quick", false, "run only the small cases (CI smoke)")
		note  = fs.String("note", "", "free-form annotation stored in the report")
	)
	fs.Alias("o", "out")
	fs.Parse(os.Args[1:])

	cases := matrix()
	rep := Report{
		Schema:    1,
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Note:      *note,
		Quick:     *quick,
	}
	for _, c := range cases {
		if *quick && !c.quick {
			continue
		}
		fmt.Fprintf(os.Stderr, "schedbench: %-24s", c.name)
		r := testing.Benchmark(c.run)
		res := Result{
			Name:        c.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		fmt.Fprintf(os.Stderr, " %12.0f ns/op %10d B/op %8d allocs/op\n",
			res.NsPerOp, res.BytesPerOp, res.AllocsPerOp)
		rep.Results = append(rep.Results, res)
	}

	if *prev != "" {
		base, err := loadBaseline(*prev)
		if err != nil {
			fatalf("%v", err)
		}
		rep.Baseline = base
		rep.Comparison = compare(base.Results, rep.Results)
		for _, c := range rep.Comparison {
			fmt.Fprintf(os.Stderr, "schedbench: %-24s %6.2fx faster, %.3fx allocs vs baseline\n",
				c.Name, c.Speedup, c.AllocRatio)
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		fatalf("%v", err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatalf("encode: %v", err)
	}
	if err := f.Close(); err != nil {
		fatalf("%v", err)
	}
	fmt.Fprintf(os.Stderr, "schedbench: wrote %s (%d cases)\n", *out, len(rep.Results))
}

// matrix is the fixed benchmark matrix. Case names are stable across
// PRs — comparisons match on them.
func matrix() []benchCase {
	return []benchCase{
		{name: "der/n=20/m=4", quick: true, run: solveCase(easched.MethodDER, 20, 4)},
		{name: "der/n=100/m=16", quick: false, run: solveCase(easched.MethodDER, 100, 16)},
		{name: "der/n=500/m=16", quick: false, run: solveCase(easched.MethodDER, 500, 16)},
		{name: "even/n=100/m=16", quick: false, run: solveCase(easched.MethodEven, 100, 16)},
		{name: "opt/n=20/m=4", quick: true, run: optCase(20, 4)},
		{name: "opt/n=100/m=16", quick: false, run: optCase(100, 16)},
		{name: "batch/der/n=20x16/m=4", quick: true, run: batchCase(20, 16, 4)},
	}
}

func workload(n int) (task.Set, power.Model) {
	rng := rand.New(rand.NewSource(benchSeed))
	ts, err := task.Generate(rng, task.PaperDefaults(n))
	if err != nil {
		fatalf("generate n=%d: %v", n, err)
	}
	return ts, power.Unit(3, 0.05)
}

// solveCase benchmarks the full validated pipeline through the unified
// Solve front door.
func solveCase(method easched.SolveMethod, n, m int) func(b *testing.B) {
	return func(b *testing.B) {
		ts, pm := workload(n)
		spec := easched.Spec{Tasks: ts, Cores: m, Model: pm, Method: method}
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := easched.Solve(ctx, spec); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// optCase benchmarks the convex solver with the same budget the
// pre-PR baseline used (400 iterations, 1e-5 relative gap).
func optCase(n, m int) func(b *testing.B) {
	return func(b *testing.B) {
		ts, pm := workload(n)
		d, err := interval.Decompose(ts, 1e-9)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := opt.Solve(d, m, pm, opt.Options{MaxIterations: 400, RelGap: 1e-5}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// batchCase benchmarks SolveBatch over `count` distinct instances of n
// tasks each; one op is the whole batch.
func batchCase(n, count, m int) func(b *testing.B) {
	return func(b *testing.B) {
		rng := rand.New(rand.NewSource(benchSeed))
		pm := power.Unit(3, 0.05)
		specs := make([]easched.Spec, count)
		for i := range specs {
			ts, err := task.Generate(rng, task.PaperDefaults(n))
			if err != nil {
				b.Fatal(err)
			}
			specs[i] = easched.Spec{Tasks: ts, Cores: m, Model: pm}
		}
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, r := range easched.SolveBatch(ctx, specs, 0) {
				if r.Err != nil {
					b.Fatal(r.Err)
				}
			}
		}
	}
}

// loadBaseline reads a previous report (or a bare Baseline block) and
// returns it as the baseline of the current run.
func loadBaseline(path string) (*Baseline, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var prev Report
	if err := json.Unmarshal(raw, &prev); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(prev.Results) == 0 {
		return nil, fmt.Errorf("%s: no results to use as baseline", path)
	}
	src := path
	if prev.Note != "" {
		src = prev.Note
	} else if prev.Generated != "" {
		src = fmt.Sprintf("%s (generated %s)", path, prev.Generated)
	}
	return &Baseline{Source: src, Results: prev.Results}, nil
}

// compare matches cases by name and computes speedup and alloc ratio.
func compare(base, cur []Result) []Comparison {
	byName := make(map[string]Result, len(base))
	for _, r := range base {
		byName[r.Name] = r
	}
	var out []Comparison
	for _, r := range cur {
		b, ok := byName[r.Name]
		if !ok || b.NsPerOp <= 0 || r.NsPerOp <= 0 {
			continue
		}
		c := Comparison{Name: r.Name, Speedup: b.NsPerOp / r.NsPerOp}
		if b.AllocsPerOp > 0 {
			c.AllocRatio = float64(r.AllocsPerOp) / float64(b.AllocsPerOp)
		}
		out = append(out, c)
	}
	return out
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "schedbench: "+format+"\n", args...)
	os.Exit(1)
}
