// Command schedjournal inspects and maintains schedd's durable session
// journals (-data-dir) offline: dump the replayed state of every log as
// JSON, verify a restarted directory against a pre-crash baseline (the
// committed prefix must survive verbatim, counters must never move
// backwards), and compact logs down to a single checkpoint segment.
//
// Usage:
//
//	schedjournal dump -data-dir DIR [-session ID] [-events] [-o out.json]
//	schedjournal verify -data-dir DIR -baseline baseline.json
//	schedjournal compact -data-dir DIR [-session ID]
//
// dump is crash-safe by construction — it only reads, and the replay
// engine it shares with schedd's recovery never panics on any byte
// sequence. verify exits 1 when any session regressed (lost committed
// work, rewound counters, or a corrupted log); a session directory that
// disappeared entirely is reported as collected, not failed, because
// that is what recovery does with finished logs. compact skips finished
// logs on purpose: dropping the segments that hold the finish record
// would resurrect the session on the next restart.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"time"

	"repro/internal/cliflag"
	"repro/internal/dispatch"
	"repro/internal/journal"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: schedjournal <command> [flags]

commands:
  dump     replay every session log and emit the folded state as JSON
  verify   check a journal directory against a baseline dump
  compact  rewrite unfinished logs as a single checkpoint segment

run "schedjournal <command> -h" for the command's flags
`)
}

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	switch os.Args[1] {
	case "dump":
		os.Exit(cmdDump(os.Args[2:]))
	case "verify":
		os.Exit(cmdVerify(os.Args[2:]))
	case "compact":
		os.Exit(cmdCompact(os.Args[2:]))
	case "-h", "-help", "--help", "help":
		usage()
		os.Exit(0)
	default:
		fmt.Fprintf(os.Stderr, "schedjournal: unknown command %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
}

// sessionDump is one session's replayed state in a dump file.
type sessionDump struct {
	ID           string             `json:"id"`
	Finished     bool               `json:"finished,omitempty"`
	FinishReason string             `json:"finish_reason,omitempty"`
	Records      int                `json:"records"`
	Segments     int                `json:"segments"`
	Truncated    bool               `json:"truncated,omitempty"`
	Error        string             `json:"error,omitempty"`
	Snapshot     *dispatch.Snapshot `json:"snapshot,omitempty"`
}

// dumpFile is the schedjournal dump format, consumed by verify.
type dumpFile struct {
	Version  int           `json:"version"`
	DataDir  string        `json:"data_dir"`
	Sessions []sessionDump `json:"sessions"`
}

// listSessions returns the session IDs under <dataDir>/sessions, sorted
// for deterministic output.
func listSessions(dataDir string) ([]string, error) {
	entries, err := os.ReadDir(filepath.Join(dataDir, "sessions"))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	var ids []string
	for _, e := range entries {
		if e.IsDir() {
			ids = append(ids, e.Name())
		}
	}
	sort.Strings(ids)
	return ids, nil
}

func sessionPath(dataDir, id string) string {
	return filepath.Join(dataDir, "sessions", id)
}

func replayOne(dataDir, id string, keepEvents bool) sessionDump {
	rep := journal.ReplayDir(id, sessionPath(dataDir, id))
	d := sessionDump{
		ID:           rep.ID,
		Finished:     rep.Finished,
		FinishReason: rep.FinishReason,
		Records:      rep.Records,
		Segments:     rep.Segments,
		Truncated:    rep.Truncated,
		Snapshot:     rep.Snapshot,
	}
	if rep.Err != nil {
		d.Error = rep.Err.Error()
	}
	if d.Snapshot != nil && !keepEvents {
		d.Snapshot.Events = nil
	}
	return d
}

func cmdDump(args []string) int {
	fs := cliflag.New("schedjournal dump")
	dataDir := fs.String("data-dir", "", "schedd journal directory (required)")
	session := fs.String("session", "", "dump only this session ID")
	events := fs.Bool("events", false, "include the recovered event ring in snapshots")
	out := fs.String("o", "", "write JSON here instead of stdout")
	fs.Parse(args)
	if *dataDir == "" {
		fmt.Fprintln(os.Stderr, "schedjournal dump: -data-dir is required")
		fs.Usage()
		return 2
	}
	ids, err := listSessions(*dataDir)
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedjournal dump: %v\n", err)
		return 1
	}
	if *session != "" {
		ids = []string{*session}
	}
	df := dumpFile{Version: 1, DataDir: *dataDir, Sessions: []sessionDump{}}
	for _, id := range ids {
		df.Sessions = append(df.Sessions, replayOne(*dataDir, id, *events))
	}
	buf, err := json.MarshalIndent(df, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedjournal dump: %v\n", err)
		return 1
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return 0
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "schedjournal dump: %v\n", err)
		return 1
	}
	fmt.Fprintf(os.Stderr, "schedjournal dump: wrote %d sessions to %s\n", len(df.Sessions), *out)
	return 0
}

func cmdVerify(args []string) int {
	fs := cliflag.New("schedjournal verify")
	dataDir := fs.String("data-dir", "", "schedd journal directory (required)")
	baseline := fs.String("baseline", "", "baseline dump file to verify against (required)")
	fs.Parse(args)
	if *dataDir == "" || *baseline == "" {
		fmt.Fprintln(os.Stderr, "schedjournal verify: -data-dir and -baseline are required")
		fs.Usage()
		return 2
	}
	raw, err := os.ReadFile(*baseline)
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedjournal verify: %v\n", err)
		return 1
	}
	var base dumpFile
	if err := json.Unmarshal(raw, &base); err != nil {
		fmt.Fprintf(os.Stderr, "schedjournal verify: bad baseline: %v\n", err)
		return 1
	}

	var ok, collected, skipped, failed int
	report := func(id, verdict, detail string) {
		if detail != "" {
			fmt.Printf("%-20s %-10s %s\n", id, verdict, detail)
		} else {
			fmt.Printf("%-20s %s\n", id, verdict)
		}
	}
	for _, b := range base.Sessions {
		if b.Error != "" {
			skipped++
			report(b.ID, "skipped", "baseline log was already corrupt")
			continue
		}
		if _, err := os.Stat(sessionPath(*dataDir, b.ID)); os.IsNotExist(err) {
			// Recovery garbage-collects finished logs and DELETE removes
			// them: a missing directory means the session completed, not
			// that data was lost mid-flight.
			collected++
			report(b.ID, "collected", "log removed (session completed)")
			continue
		}
		// verify may run against a live schedd: a session can finish —
		// and its log be deleted (files first, then the directory) —
		// between the stat above and the replay's file reads, which
		// shows up as a read error or an empty log. Settle and retry
		// before trusting either; a directory that disappears entirely
		// confirms the teardown.
		cur := replayOne(*dataDir, b.ID, false)
		gone := false
		for attempt := 0; attempt < 5 && (cur.Error != "" || cur.Snapshot == nil); attempt++ {
			time.Sleep(100 * time.Millisecond)
			if _, err := os.Stat(sessionPath(*dataDir, b.ID)); os.IsNotExist(err) {
				gone = true
				break
			}
			cur = replayOne(*dataDir, b.ID, false)
		}
		if gone {
			collected++
			report(b.ID, "collected", "log removed mid-verify (session completed)")
			continue
		}
		if msg := verifySession(b, cur); msg != "" {
			failed++
			report(b.ID, "FAIL", msg)
			continue
		}
		ok++
		report(b.ID, "ok", fmt.Sprintf("records %d -> %d, committed %d -> %d",
			b.Records, cur.Records, committedLen(b.Snapshot), committedLen(cur.Snapshot)))
	}
	fmt.Printf("verify: %d ok, %d collected, %d skipped, %d failed (%d baseline sessions)\n",
		ok, collected, skipped, failed, len(base.Sessions))
	if failed > 0 {
		return 1
	}
	return 0
}

func committedLen(s *dispatch.Snapshot) int {
	if s == nil {
		return 0
	}
	return len(s.Committed)
}

// verifySession checks that cur is a legal successor of baseline b:
// nothing durable may be lost and nothing may move backwards. Returns
// "" on success, otherwise the failure description.
func verifySession(b, cur sessionDump) string {
	if cur.Error != "" {
		return "replay failed: " + cur.Error
	}
	if cur.Snapshot == nil {
		if b.Snapshot == nil {
			return ""
		}
		return "log replays to nothing but the baseline had state"
	}
	if b.Snapshot == nil {
		return "" // baseline had no folded state: nothing to regress
	}
	if b.Finished && !cur.Finished {
		return "finish record lost: baseline was finished, current is not"
	}
	bs, cs := b.Snapshot, cur.Snapshot
	switch {
	case cs.Seq < bs.Seq:
		return fmt.Sprintf("event seq went backwards: %d -> %d", bs.Seq, cs.Seq)
	case cs.Now < bs.Now:
		return fmt.Sprintf("clock went backwards: %g -> %g", bs.Now, cs.Now)
	case cs.Commits < bs.Commits:
		return fmt.Sprintf("commit count went backwards: %d -> %d", bs.Commits, cs.Commits)
	case cs.Replans < bs.Replans:
		return fmt.Sprintf("replan count went backwards: %d -> %d", bs.Replans, cs.Replans)
	case cs.ShedCount < bs.ShedCount:
		return fmt.Sprintf("shed count went backwards: %d -> %d", bs.ShedCount, cs.ShedCount)
	case len(cs.Tasks) < len(bs.Tasks):
		return fmt.Sprintf("task table shrank: %d -> %d", len(bs.Tasks), len(cs.Tasks))
	case len(cs.Committed) < len(bs.Committed):
		return fmt.Sprintf("committed prefix shrank: %d -> %d segments", len(bs.Committed), len(cs.Committed))
	}
	for i := range bs.Committed {
		if !reflect.DeepEqual(bs.Committed[i], cs.Committed[i]) {
			return fmt.Sprintf("committed segment %d diverged: %+v -> %+v", i, bs.Committed[i], cs.Committed[i])
		}
	}
	for i := range bs.Tasks {
		bt, ct := bs.Tasks[i], cs.Tasks[i]
		if bt.Release != ct.Release || bt.Work != ct.Work || bt.Deadline != ct.Deadline || bt.ArrivedAt != ct.ArrivedAt {
			return fmt.Sprintf("task %d parameters changed: %+v -> %+v", i, bt, ct)
		}
		if ct.Remaining > bt.Remaining {
			return fmt.Sprintf("task %d remaining work grew: %g -> %g", i, bt.Remaining, ct.Remaining)
		}
		if bt.Done && !ct.Done {
			return fmt.Sprintf("task %d un-completed", i)
		}
	}
	return ""
}

func cmdCompact(args []string) int {
	fs := cliflag.New("schedjournal compact")
	dataDir := fs.String("data-dir", "", "schedd journal directory (required)")
	session := fs.String("session", "", "compact only this session ID")
	fs.Parse(args)
	if *dataDir == "" {
		fmt.Fprintln(os.Stderr, "schedjournal compact: -data-dir is required")
		fs.Usage()
		return 2
	}
	st, err := journal.Open(*dataDir, journal.Options{Fsync: journal.FsyncAlways})
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedjournal compact: %v\n", err)
		return 1
	}
	defer st.Close()
	ids, err := st.Sessions()
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedjournal compact: %v\n", err)
		return 1
	}
	if *session != "" {
		ids = []string{*session}
	}
	sort.Strings(ids)
	var compacted, skipped, failed int
	for _, id := range ids {
		verdict, err := compactOne(st, id)
		switch {
		case err != nil:
			failed++
			fmt.Printf("%-20s FAIL       %v\n", id, err)
		case strings.HasPrefix(verdict, "compacted"):
			compacted++
			fmt.Printf("%-20s %s\n", id, verdict)
		default:
			skipped++
			fmt.Printf("%-20s %s\n", id, verdict)
		}
	}
	fmt.Printf("compact: %d compacted, %d skipped, %d failed (%d sessions)\n",
		compacted, skipped, failed, len(ids))
	if failed > 0 {
		return 1
	}
	return 0
}

// compactOne rewrites one session's log as checkpoint-only. The append
// path already implements compaction — a checkpoint record rotates to a
// fresh segment and deletes the older ones once it is durable — so this
// is just "replay, then append what the fold produced".
func compactOne(st *journal.Store, id string) (string, error) {
	rep := st.Replay(id)
	if rep.Err != nil {
		return "", fmt.Errorf("replay: %w", rep.Err)
	}
	if rep.Snapshot == nil {
		return "skipped    empty log", nil
	}
	if rep.Finished {
		// The finish record lives in the existing segments; compacting
		// would drop it and resurrect the session on the next restart.
		// Recovery collects finished logs anyway.
		return "skipped    finished (" + rep.FinishReason + "); collected on next restart", nil
	}
	if rep.Segments == 1 && rep.Records == 1 {
		return "skipped    already compact", nil
	}
	w, err := st.Writer(id)
	if err != nil {
		return "", err
	}
	snap := rep.Snapshot
	rec := &dispatch.Record{
		Kind:      dispatch.RecCheckpoint,
		Clock:     snap.Now,
		Seq:       snap.Seq,
		Realized:  snap.Realized,
		Replans:   snap.Replans,
		Commits:   snap.Commits,
		ShedCount: snap.ShedCount,
		Snapshot:  snap,
	}
	if err := w.Append(rec); err != nil {
		w.Close()
		return "", fmt.Errorf("append checkpoint: %w", err)
	}
	if err := w.Close(); err != nil {
		return "", err
	}
	after := journal.ReplayDir(id, sessionPath(st.Dir(), id))
	if after.Err != nil {
		return "", fmt.Errorf("post-compaction replay: %w", after.Err)
	}
	return fmt.Sprintf("compacted  %d segments / %d records -> %d / %d",
		rep.Segments, rep.Records, after.Segments, after.Records), nil
}
