// Command conform runs the metamorphic conformance matrix: every
// registered scheduler × every generator regime × every metamorphic
// relation, with gap-aware predicates on the convex optimum. It emits a
// JSON conformance report (relation statistics, E/E^opt ratio statistics
// per scheduler for comparison against the paper's Section VI, and every
// violation with a minimized reproducer), and feeds violating instances
// back into the native fuzz corpus so each regression becomes a permanent
// `go test` seed. Exit status is non-zero when any relation is violated,
// making it suitable as a nightly CI soak.
//
// Usage:
//
//	conform -instances 10000 -seed 1 -o report.json
//	conform -smoke                         # small PR-time matrix
//	conform -regimes bursty,harmonic -relations time-shift,add-core
//	conform -corpus testdata/fuzz/FuzzSchedulers
package main

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"repro/easched"
	"repro/internal/cliflag"
	"repro/internal/fuzzenc"
	"repro/internal/metamorphic"
	"repro/internal/task"

	// Schedulers self-register with the cross-check registry on import;
	// the matrix audits whatever is registered.
	_ "repro/internal/core"
	_ "repro/internal/fallback"
	_ "repro/internal/online"
	_ "repro/internal/partition"
	_ "repro/internal/yds"
)

func main() {
	fs := cliflag.New("conform")
	var (
		instances  = fs.Int("instances", 10000, "instances across the matrix (nightly bar is >= 10000)")
		seed       = fs.Int64("seed", 1, "base RNG seed; instance k replays from seed+k")
		maxTasks   = fs.Int("max-tasks", 0, "max tasks per instance (0 = suite default)")
		maxCores   = fs.Int("cores", 0, "max cores per instance (0 = suite default)")
		regimes    = fs.String("regimes", "", "comma-separated generator regimes (empty = all)")
		relations  = fs.String("relations", "", "comma-separated relation names (empty = all)")
		schedulers = fs.String("schedulers", "", "comma-separated scheduler names (empty = all registered)")
		out        = fs.String("o", "", "write the JSON conformance report to this file")
		corpus     = fs.String("corpus", "", "write violating instances into this fuzz corpus directory")
		minimize   = fs.Bool("minimize", true, "shrink violating instances to minimal reproducers")
		smoke      = fs.Bool("smoke", false, "small PR-time matrix (overrides -instances/-max-tasks)")
		listRels   = fs.Bool("list", false, "list relations with their justifications and exit")
		verbose    = fs.Bool("v", false, "progress output")
	)
	fs.Alias("max-tasks", "tasks")
	fs.Parse(os.Args[1:])

	if *listRels {
		for _, r := range easched.ConformRelations() {
			fmt.Printf("%-24s %s\n", r.Name, r.Justification)
		}
		return
	}

	opts := easched.ConformOptions{
		Instances: *instances,
		Seed:      *seed,
		MaxTasks:  *maxTasks,
		MaxCores:  *maxCores,
		Minimize:  *minimize,
	}
	if *smoke {
		opts.Instances = 120
		opts.MaxTasks = 6
	}
	if err := applyFilters(&opts, *regimes, *relations, *schedulers); err != nil {
		fatal("%v", err)
	}
	if *verbose {
		last := -1
		opts.Progress = func(done, total int) {
			if pct := done * 100 / total; pct != last || done == total {
				last = pct
				fmt.Fprintf(os.Stderr, "\rconform: %d/%d instances (%d%%)", done, total, pct)
				if done == total {
					fmt.Fprintln(os.Stderr)
				}
			}
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	rep, err := easched.Conform(ctx, opts)
	if err != nil {
		fatal("conform: %v", err)
	}
	fmt.Println(rep.Summary())

	if *out != "" {
		if err := writeReport(*out, rep); err != nil {
			fatal("conform: %v", err)
		}
		fmt.Printf("conform: report written to %s\n", *out)
	}
	if *corpus != "" && len(rep.Violations) > 0 {
		n, err := writeCorpus(*corpus, rep.Violations)
		if err != nil {
			fatal("conform: corpus: %v", err)
		}
		fmt.Printf("conform: %d reproducer(s) written to %s\n", n, *corpus)
	}
	if !rep.OK() {
		fmt.Fprintf(os.Stderr, "conform: FAILED with %d violation(s)\n", len(rep.Violations))
		os.Exit(1)
	}
	fmt.Printf("conform: PASS — %d instances, zero violations\n", rep.Instances)
}

// applyFilters resolves the comma-separated name flags, rejecting unknown
// names loudly instead of silently shrinking the matrix.
func applyFilters(opts *easched.ConformOptions, regimes, relations, schedulers string) error {
	for _, name := range splitList(regimes) {
		r, err := task.ParseRegime(name)
		if err != nil {
			return err
		}
		opts.Regimes = append(opts.Regimes, r)
	}
	for _, name := range splitList(relations) {
		rel, ok := metamorphic.RelationByName(name)
		if !ok {
			return fmt.Errorf("unknown relation %q (see -list)", name)
		}
		opts.Relations = append(opts.Relations, rel)
	}
	if names := splitList(schedulers); len(names) > 0 {
		opts.Schedulers = names
	}
	return nil
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func writeReport(path string, rep *easched.ConformReport) error {
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// writeCorpus encodes each violating instance (the minimized reproducer
// when one exists) through the shared fuzz codec and checks it into the
// corpus directory in `go test fuzz v1` format. The filename is derived
// from the encoded bytes, so re-runs are idempotent and distinct
// violations never collide.
func writeCorpus(dir string, vs []easched.ConformViolation) (int, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return 0, err
	}
	written := 0
	seen := map[string]bool{}
	for _, v := range vs {
		inst := v.Base
		if v.Minimized != nil {
			inst = *v.Minimized
		}
		if len(inst.Tasks) == 0 {
			continue
		}
		data := fuzzenc.Encode(inst.Tasks, inst.Cores, inst.Model)
		sum := sha256.Sum256(data)
		name := fmt.Sprintf("conform-%x", sum[:8])
		if seen[name] {
			continue
		}
		seen[name] = true
		if err := os.WriteFile(filepath.Join(dir, name), fuzzenc.CorpusEntry(data), 0o644); err != nil {
			return written, err
		}
		written++
	}
	return written, nil
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}
