// Command schedd is the scheduling daemon: a JSON HTTP service that
// solves energy-aware aperiodic-task instances with any scheduler in the
// repository's registry, behind admission control, a solve cache, an
// in-band schedule-verification guardrail, and first-class metrics.
//
// Usage:
//
//	schedd [-addr :8080] [-workers N] [-queue 64] [-cache 1024]
//	       [-timeout 5s] [-max-tasks 10000] [-no-verify] [-quiet]
//
// Endpoints (see internal/server):
//
//	POST /v1/schedule    {"algorithm":"S^F2","cores":4,"model":{"alpha":3,"p0":0.05},"tasks":[...]}
//	POST /v1/feasible    {"cores":4,"speed":1,"tasks":[...]}
//	GET  /v1/algorithms
//	GET  /healthz
//	GET  /metrics
//	     /debug/pprof/*
//
// SIGINT/SIGTERM drain gracefully: in-flight solves finish (bounded by
// the grace timeout) while new work is rejected with 503.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/server"
)

func main() {
	var (
		addr     = flag.String("addr", ":8080", "listen address")
		workers  = flag.Int("workers", 0, "concurrent solves (0 = GOMAXPROCS)")
		queue    = flag.Int("queue", 64, "admission-queue depth before 429")
		cache    = flag.Int("cache", 1024, "solve-cache capacity (-1 disables)")
		timeout  = flag.Duration("timeout", 5*time.Second, "per-request solve deadline")
		maxTasks = flag.Int("max-tasks", 10000, "reject larger instances with 400")
		noVerify = flag.Bool("no-verify", false, "skip the in-band schedule verification guardrail")
		grace    = flag.Duration("grace", 5*time.Second, "drain timeout on shutdown")
		quiet    = flag.Bool("quiet", false, "suppress per-request log lines")
	)
	flag.Parse()

	logOut := io.Writer(os.Stderr)
	if *quiet {
		logOut = io.Discard
	}
	logger := log.New(logOut, "schedd ", log.LstdFlags|log.Lmicroseconds)

	srv := server.New(server.Config{
		Addr:          *addr,
		Workers:       *workers,
		Queue:         *queue,
		CacheSize:     *cache,
		SolveTimeout:  *timeout,
		MaxTasks:      *maxTasks,
		DisableVerify: *noVerify,
		GraceTimeout:  *grace,
		Logger:        logger,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	nw := *workers
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(os.Stderr, "schedd: listening on %s (workers=%d queue=%d cache=%d timeout=%s verify=%t)\n",
		*addr, nw, *queue, *cache, *timeout, !*noVerify)
	if err := srv.ListenAndServe(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "schedd: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "schedd: bye")
}
