// Command schedd is the scheduling daemon: a JSON HTTP service that
// solves energy-aware aperiodic-task instances with any scheduler in the
// repository's registry, behind admission control, a solve cache, an
// in-band schedule-verification guardrail, per-algorithm circuit
// breakers with an always-feasible fallback chain, and first-class
// metrics.
//
// Usage:
//
//	schedd [-addr :8080] [-workers N] [-queue 64] [-cache 1024]
//	       [-timeout 5s] [-max-tasks 10000] [-no-verify] [-quiet]
//	       [-fallback MaxFreq] [-breaker-threshold 5] [-breaker-cooldown 2s]
//	       [-sessions 256] [-session-ttl 0] [-session-backlog 1024]
//	       [-data-dir DIR] [-fsync interval]
//	       [-faults point=rate,...] [-fault-seed N] [-fault-delay 100ms]
//
// With -data-dir set every session's lifecycle is journaled to a
// crash-recoverable write-ahead log and replayed on the next start:
// committed work, counters, and the SSE event ring survive a SIGKILL.
// -fsync picks the durability policy (always | interval | never); see
// internal/journal. Inspect or repair the logs with cmd/schedjournal.
//
// Endpoints (see internal/server):
//
//	POST /v1/schedule    {"algorithm":"S^F2","cores":4,"model":{"alpha":3,"p0":0.05},"tasks":[...]}
//	POST /v1/feasible    {"cores":4,"speed":1,"tasks":[...]}
//	GET  /v1/algorithms
//	GET  /healthz        liveness
//	GET  /readyz         readiness (503 while draining / all breakers open)
//	GET  /metrics
//	     /debug/pprof/*
//
// Streaming sessions (live dispatch runtime, see internal/dispatch):
//
//	POST   /v1/sessions               open a session
//	POST   /v1/sessions/{id}/tasks    {"at":12.5,"tasks":[...]}
//	GET    /v1/sessions/{id}/schedule committed prefix + plan suffix
//	GET    /v1/sessions/{id}/events   SSE event stream
//	DELETE /v1/sessions/{id}          finish + final competitive-ratio report
//
// Fault injection is OFF unless -faults (or SCHEDD_FAULTS) names at
// least one point with a nonzero rate, e.g.
//
//	schedd -faults solver_panic=0.1,cache_corrupt=0.2 -fault-seed 42
//
// It exists for chaos testing (`make chaos`); never enable it in a real
// deployment.
//
// SIGINT/SIGTERM drain gracefully: in-flight solves finish and every
// live session is run to its horizon with its event stream closed
// (bounded by the grace timeout) while new work is rejected with 503.
package main

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"syscall"
	"time"

	"repro/internal/cliflag"
	"repro/internal/fault"
	"repro/internal/journal"
	"repro/internal/server"
)

// envDefault returns the environment value when the flag was left at its
// default, so SCHEDD_FAULTS / SCHEDD_FAULT_SEED work in harnesses that
// cannot pass flags.
func envDefault(flagVal, env string) string {
	if flagVal != "" {
		return flagVal
	}
	return os.Getenv(env)
}

func main() {
	fs := cliflag.New("schedd")
	var (
		addr     = fs.String("addr", ":8080", "listen address")
		workers  = fs.Int("workers", 0, "concurrent solves (0 = GOMAXPROCS)")
		queue    = fs.Int("queue", 64, "admission-queue depth before 429")
		cache    = fs.Int("cache", 1024, "solve-cache capacity (-1 disables)")
		timeout  = fs.Duration("timeout", 5*time.Second, "per-request solve deadline")
		maxTasks = fs.Int("max-tasks", 10000, "reject larger instances with 400")
		noVerify = fs.Bool("no-verify", false, "skip the in-band schedule verification guardrail")
		grace    = fs.Duration("grace", 5*time.Second, "drain timeout on shutdown")
		quiet    = fs.Bool("quiet", false, "suppress per-request log lines")

		fallbackAlg = fs.String("fallback", "", `fallback algorithm for failed solves ("" = MaxFreq, "none" disables)`)
		brThreshold = fs.Int("breaker-threshold", 0, "consecutive failures that open an algorithm's breaker (0 = default 5, negative disables)")
		brCooldown  = fs.Duration("breaker-cooldown", 0, "initial open-breaker cooldown before a half-open probe (0 = default 2s)")
		brMax       = fs.Duration("breaker-max-cooldown", 0, "cap on the exponentially growing cooldown (0 = default 30s)")

		sessionLimit   = fs.Int("sessions", 0, "max concurrent streaming sessions (0 = default 256)")
		sessionTTL     = fs.Duration("session-ttl", 0, "evict sessions idle longer than this (0 disables)")
		sessionBacklog = fs.Int("session-backlog", 0, "default per-session backlog before load-shedding (0 = default 1024)")

		dataDir = fs.String("data-dir", "", "durable session journal directory (empty disables durability)")
		fsyncP  = fs.String("fsync", "interval", "journal fsync policy: always | interval | never")

		faultSpec  = fs.String("faults", "", "fault-injection spec point=rate,... (env SCHEDD_FAULTS); empty disables")
		faultSeed  = fs.Int64("fault-seed", 0, "fault-injection RNG seed (env SCHEDD_FAULT_SEED; 0 = 1)")
		faultDelay = fs.Duration("fault-delay", 0, "duration of injected solver_delay faults (0 = default 100ms)")
	)
	fs.Parse(os.Args[1:])

	fsync, err := journal.ParsePolicy(*fsyncP)
	if err != nil {
		fmt.Fprintf(os.Stderr, "schedd: -fsync: %v\n", err)
		os.Exit(2)
	}

	logOut := io.Writer(os.Stderr)
	if *quiet {
		logOut = io.Discard
	}
	logger := log.New(logOut, "schedd ", log.LstdFlags|log.Lmicroseconds)

	spec := envDefault(*faultSpec, "SCHEDD_FAULTS")
	if spec != "" {
		rates, err := fault.ParseRates(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "schedd: -faults: %v\n", err)
			os.Exit(2)
		}
		seed := *faultSeed
		if seed == 0 {
			if env := os.Getenv("SCHEDD_FAULT_SEED"); env != "" {
				if v, err := strconv.ParseInt(env, 10, 64); err == nil {
					seed = v
				}
			}
		}
		if seed == 0 {
			seed = 1 // the documented "-fault-seed 0 = 1" default
		}
		fault.Enable(fault.New(fault.Plan{Rates: rates, Seed: seed, Delay: *faultDelay}))
		fmt.Fprintf(os.Stderr, "schedd: FAULT INJECTION ACTIVE: %s (seed=%d)\n", spec, seed)
	}

	srv := server.New(server.Config{
		Addr:               *addr,
		Workers:            *workers,
		Queue:              *queue,
		CacheSize:          *cache,
		SolveTimeout:       *timeout,
		MaxTasks:           *maxTasks,
		DisableVerify:      *noVerify,
		GraceTimeout:       *grace,
		Logger:             logger,
		FallbackAlgorithm:  *fallbackAlg,
		BreakerThreshold:   *brThreshold,
		BreakerCooldown:    *brCooldown,
		BreakerMaxCooldown: *brMax,
		SessionLimit:       *sessionLimit,
		SessionTTL:         *sessionTTL,
		SessionBacklog:     *sessionBacklog,
		DataDir:            *dataDir,
		Fsync:              fsync,
	})

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *dataDir != "" {
		rep, err := srv.Recover(ctx)
		if err != nil {
			fmt.Fprintf(os.Stderr, "schedd: journal recovery: %v\n", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "schedd: journal %s (fsync=%s): recovered %d sessions, %d failed, %d collected\n",
			*dataDir, fsync, rep.Recovered, rep.Failed, rep.Collected)
	}

	nw := *workers
	if nw <= 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	fmt.Fprintf(os.Stderr, "schedd: listening on %s (workers=%d queue=%d cache=%d timeout=%s verify=%t)\n",
		*addr, nw, *queue, *cache, *timeout, !*noVerify)
	if err := srv.ListenAndServe(ctx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "schedd: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "schedd: bye")
}
