// Command taskgen generates random aperiodic workloads with the paper's
// distributions and writes them as JSON, ready for cmd/schedviz or any
// consumer of the easched API.
//
// Usage:
//
//	taskgen -n 20 -seed 7 > workload.json
//	taskgen -n 20 -profile xscale -intensity-lo 0.3 > xscale.json
//	taskgen -n 10 -release-hi 50 -work-lo 5 -work-hi 15
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/task"
)

func main() {
	var (
		n           = flag.Int("n", 20, "number of tasks")
		seed        = flag.Int64("seed", 1, "RNG seed")
		profile     = flag.String("profile", "paper", "workload profile: paper or xscale")
		releaseHi   = flag.Float64("release-hi", 0, "override release upper bound")
		workLo      = flag.Float64("work-lo", 0, "override work lower bound")
		workHi      = flag.Float64("work-hi", 0, "override work upper bound")
		intensityLo = flag.Float64("intensity-lo", 0, "override intensity lower bound")
		intensityHi = flag.Float64("intensity-hi", 0, "override intensity upper bound")
		grid        = flag.Bool("grid", false, "draw intensities from the {0.1,...,1.0} grid")
	)
	flag.Parse()

	var p task.GenParams
	switch *profile {
	case "paper":
		p = task.PaperDefaults(*n)
	case "xscale":
		p = task.XScaleDefaults(*n)
	default:
		fmt.Fprintf(os.Stderr, "taskgen: unknown profile %q\n", *profile)
		os.Exit(2)
	}
	if *releaseHi > 0 {
		p.ReleaseHi = *releaseHi
	}
	if *workLo > 0 {
		p.WorkLo = *workLo
	}
	if *workHi > 0 {
		p.WorkHi = *workHi
	}
	if *intensityLo > 0 {
		p.IntensityLo = *intensityLo
	}
	if *intensityHi > 0 {
		p.IntensityHi = *intensityHi
	}
	if *grid {
		p.IntensityChoices = task.GridIntensities()
	}

	ts, err := task.Generate(rand.New(rand.NewSource(*seed)), p)
	if err != nil {
		fmt.Fprintf(os.Stderr, "taskgen: %v\n", err)
		os.Exit(1)
	}
	if err := ts.Write(os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "taskgen: %v\n", err)
		os.Exit(1)
	}
}
