// Command taskgen generates random aperiodic workloads with the paper's
// distributions and writes them as JSON or CSV, ready for cmd/schedviz,
// cmd/schedload, or any consumer of the easched API.
//
// Usage:
//
//	taskgen -n 20 -seed 7 > workload.json
//	taskgen -n 20 -o workload.csv -format csv
//	taskgen -n 20 -profile xscale -intensity-lo 0.3 > xscale.json
//	taskgen -n 10 -release-hi 50 -work-lo 5 -work-hi 15
//
// With -arrivals it instead emits a timed arrival trace — batches of
// tasks stamped with virtual arrival times — for streaming sessions
// (schedload -stream, POST /v1/sessions/{id}/tasks):
//
//	taskgen -arrivals poisson -batches 50 -rate 0.5 > trace.json
//	taskgen -arrivals bursty -batches 50 -regime harmonic -batch-hi 5
//
// Batch contents come from the generator-zoo regime (-regime, default
// bursty), re-anchored to release at their arrival instant. Arrival
// traces are always JSON.
//
// With -o the format is inferred from the file extension (.csv or
// .json) unless -format forces one.
package main

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/cliflag"
	"repro/internal/task"
)

func main() {
	fs := cliflag.New("taskgen")
	var (
		n           = fs.Int("n", 20, "number of tasks")
		seed        = fs.Int64("seed", 1, "RNG seed")
		profile     = fs.String("profile", "paper", "workload profile: paper or xscale")
		out         = fs.String("o", "", "output file (default stdout)")
		format      = fs.String("format", "", "output format: json or csv (default json, or inferred from -o extension)")
		releaseHi   = fs.Float64("release-hi", 0, "override release upper bound")
		workLo      = fs.Float64("work-lo", 0, "override work lower bound")
		workHi      = fs.Float64("work-hi", 0, "override work upper bound")
		intensityLo = fs.Float64("intensity-lo", 0, "override intensity lower bound")
		intensityHi = fs.Float64("intensity-hi", 0, "override intensity upper bound")
		grid        = fs.Bool("grid", false, "draw intensities from the {0.1,...,1.0} grid")

		arrivals = fs.String("arrivals", "", "emit an arrival trace instead: poisson or bursty")
		batches  = fs.Int("batches", 50, "arrival batches in the trace")
		rate     = fs.Float64("rate", 0.5, "mean batch-arrival rate per time unit")
		batchLo  = fs.Int("batch-lo", 1, "min tasks per arrival batch")
		batchHi  = fs.Int("batch-hi", 3, "max tasks per arrival batch")
		regime   = fs.String("regime", "", "generator-zoo regime shaping batch contents (default bursty)")
	)
	fs.Parse(os.Args[1:])

	if *arrivals != "" {
		if err := emitTrace(*arrivals, *seed, *batches, *rate, *batchLo, *batchHi, *regime, *out); err != nil {
			fmt.Fprintf(os.Stderr, "taskgen: %v\n", err)
			os.Exit(1)
		}
		return
	}

	var p task.GenParams
	switch *profile {
	case "paper":
		p = task.PaperDefaults(*n)
	case "xscale":
		p = task.XScaleDefaults(*n)
	default:
		fmt.Fprintf(os.Stderr, "taskgen: unknown profile %q\n", *profile)
		os.Exit(2)
	}
	if *releaseHi > 0 {
		p.ReleaseHi = *releaseHi
	}
	if *workLo > 0 {
		p.WorkLo = *workLo
	}
	if *workHi > 0 {
		p.WorkHi = *workHi
	}
	if *intensityLo > 0 {
		p.IntensityLo = *intensityLo
	}
	if *intensityHi > 0 {
		p.IntensityHi = *intensityHi
	}
	if *grid {
		p.IntensityChoices = task.GridIntensities()
	}

	f := strings.ToLower(*format)
	if f == "" {
		if strings.EqualFold(filepath.Ext(*out), ".csv") {
			f = "csv"
		} else {
			f = "json"
		}
	}
	if f != "json" && f != "csv" {
		fmt.Fprintf(os.Stderr, "taskgen: unknown format %q (want json or csv)\n", f)
		os.Exit(2)
	}

	ts, err := task.Generate(rand.New(rand.NewSource(*seed)), p)
	if err != nil {
		fmt.Fprintf(os.Stderr, "taskgen: %v\n", err)
		os.Exit(1)
	}

	var w io.Writer = os.Stdout
	var file *os.File
	if *out != "" {
		file, err = os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "taskgen: %v\n", err)
			os.Exit(1)
		}
		w = file
	}
	if f == "csv" {
		err = ts.WriteCSV(w)
	} else {
		err = ts.Write(w)
	}
	if file != nil {
		if cerr := file.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "taskgen: %v\n", err)
		os.Exit(1)
	}
}

// emitTrace generates and writes a timed arrival trace.
func emitTrace(process string, seed int64, batches int, rate float64, batchLo, batchHi int, regime, out string) (err error) {
	p := task.ArrivalParams{
		Process: task.ArrivalProcess(process),
		Batches: batches,
		Rate:    rate,
		BatchLo: batchLo,
		BatchHi: batchHi,
	}
	if regime != "" {
		r, err := task.ParseRegime(regime)
		if err != nil {
			return err
		}
		p.Regime = r
	}
	tr, err := task.GenerateTrace(rand.New(rand.NewSource(seed)), p)
	if err != nil {
		return err
	}
	var w io.Writer = os.Stdout
	if out != "" {
		f, ferr := os.Create(out)
		if ferr != nil {
			return ferr
		}
		defer func() {
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}()
		w = f
	}
	return tr.Write(w)
}
