package repro

// Cross-module integration tests: every scheduler in the repository is
// run on shared workloads and checked against every independent oracle —
// the schedule validator, the discrete-event simulator, the max-flow
// feasibility analyzer, and the convex optimal solver. These tests bind
// the subsystems together the way the experiment harness does, but with
// hard assertions rather than statistical summaries.

import (
	"math"
	"math/rand"
	"testing"

	"repro/easched"
	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/feas"
	"repro/internal/interval"
	"repro/internal/online"
	"repro/internal/opt"
	"repro/internal/partition"
	"repro/internal/power"
	"repro/internal/schedule"
	"repro/internal/sim"
	"repro/internal/task"
	"repro/internal/yds"
)

// oracleCheck runs a realized schedule through both independent checkers
// and verifies energy agreement with the analytic value.
func oracleCheck(t *testing.T, s *schedule.Schedule, pm power.Model, wantEnergy float64, label string) {
	t.Helper()
	if errs := s.Validate(1e-6, true); len(errs) > 0 {
		t.Fatalf("%s: validator: %v", label, errs[0])
	}
	rep, err := sim.Run(s, pm)
	if err != nil {
		t.Fatalf("%s: sim: %v", label, err)
	}
	if !rep.OK() {
		t.Fatalf("%s: sim violations: %v", label, rep.Violations)
	}
	if math.Abs(rep.Energy-wantEnergy) > 1e-6*math.Max(1, wantEnergy) {
		t.Errorf("%s: sim energy %.6f != analytic %.6f", label, rep.Energy, wantEnergy)
	}
}

func TestAllSchedulersAgreeOnOracles(t *testing.T) {
	rng := rand.New(rand.NewSource(2014))
	for trial := 0; trial < 8; trial++ {
		ts := task.MustGenerate(rng, task.PaperDefaults(14))
		m := 2 + rng.Intn(4)
		pm := power.Unit(3, rng.Float64()*0.15)

		suite, err := core.RunSuite(ts, m, pm, core.Options{Tolerance: 1e-9})
		if err != nil {
			t.Fatal(err)
		}
		oracleCheck(t, suite.Even.Final, pm, suite.Even.FinalEnergy, "F1")
		oracleCheck(t, suite.DER.Final, pm, suite.DER.FinalEnergy, "F2")
		oracleCheck(t, suite.Even.Intermediate, pm, suite.Even.IntermediateEnergy, "I1")
		oracleCheck(t, suite.DER.Intermediate, pm, suite.DER.IntermediateEnergy, "I2")

		psched, pe, err := partition.Schedule(ts, m, pm)
		if err != nil {
			t.Fatal(err)
		}
		oracleCheck(t, psched, pm, pe, "partitioned")

		onl, err := online.ReplanDER(ts, m, pm)
		if err != nil {
			t.Fatal(err)
		}
		oracleCheck(t, onl.Schedule, pm, onl.Energy, "online")

		// The convex optimum lower-bounds everything (up to its gap).
		d := interval.MustDecompose(ts, 1e-9)
		sol := opt.MustSolve(d, m, pm, opt.Options{})
		slack := sol.Gap + 1e-6*sol.Energy
		for label, e := range map[string]float64{
			"F1": suite.Even.FinalEnergy, "F2": suite.DER.FinalEnergy,
			"partitioned": pe, "online": onl.Energy,
		} {
			if e < sol.Energy-slack {
				t.Errorf("trial %d: %s energy %.6f below optimum %.6f", trial, label, e, sol.Energy)
			}
		}
	}
}

func TestFeasibilityConsistentWithSchedulers(t *testing.T) {
	// If the feasibility analyzer says speed s is required, the final
	// schedules' peak frequency cannot be below s (they must be at least
	// as fast somewhere), and every realized schedule must be feasible at
	// its own peak frequency.
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 6; trial++ {
		ts := task.MustGenerate(rng, task.PaperDefaults(12))
		m := 2 + rng.Intn(3)
		d := interval.MustDecompose(ts, 1e-9)
		minSpeed, _, err := feas.MinSpeed(d, m, 1e-9)
		if err != nil {
			t.Fatal(err)
		}
		res := core.MustSchedule(ts, m, power.Unit(3, 0), alloc.DER, core.Options{Tolerance: 1e-9})
		var peak float64
		for _, f := range res.FinalFrequencies {
			peak = math.Max(peak, f)
		}
		if peak < minSpeed*(1-1e-6) {
			t.Errorf("trial %d: peak frequency %.6f below minimal feasible speed %.6f",
				trial, peak, minSpeed)
		}
		ok, _, err := feas.Feasible(d, m, peak*(1+1e-9))
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			t.Errorf("trial %d: instance infeasible at the schedule's own peak %.6f", trial, peak)
		}
	}
}

func TestUniprocessorOptimaAgree(t *testing.T) {
	// Three independent computations of the uniprocessor optimum with
	// p0 = 0 must coincide: YDS, the convex solver, and the partitioned
	// scheduler on one core.
	rng := rand.New(rand.NewSource(99))
	pm := power.Unit(3, 0)
	for trial := 0; trial < 5; trial++ {
		ts := task.MustGenerate(rng, task.PaperDefaults(7))
		eYDS, err := yds.Energy(ts, pm)
		if err != nil {
			t.Fatal(err)
		}
		d := interval.MustDecompose(ts, 1e-9)
		sol := opt.MustSolve(d, 1, pm, opt.Options{MaxIterations: 20000, RelGap: 1e-9})
		_, ePart, err := partition.Schedule(ts, 1, pm)
		if err != nil {
			t.Fatal(err)
		}
		tol := 1e-3*sol.Energy + sol.Gap
		if math.Abs(eYDS-sol.Energy) > tol {
			t.Errorf("trial %d: YDS %.6f vs convex %.6f", trial, eYDS, sol.Energy)
		}
		if math.Abs(ePart-eYDS) > 1e-6*eYDS {
			t.Errorf("trial %d: partitioned-on-1 %.6f vs YDS %.6f", trial, ePart, eYDS)
		}
	}
}

func TestPublicAPISectionVDEndToEnd(t *testing.T) {
	// The full public-API journey on the paper's worked example,
	// asserting the published numbers.
	tasks := easched.MustTasks(
		easched.T(0, 8, 10), easched.T(2, 14, 18), easched.T(4, 8, 16),
		easched.T(6, 4, 14), easched.T(8, 10, 20), easched.T(12, 6, 22),
	)
	model := easched.NewModel(3, 0)
	even, der, err := easched.ScheduleBoth(tasks, 4, model)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(even.FinalEnergy-33.0642) > 5e-4 || math.Abs(der.FinalEnergy-31.8362) > 5e-4 {
		t.Errorf("paper energies not reproduced: F1=%.4f F2=%.4f", even.FinalEnergy, der.FinalEnergy)
	}
	sol, err := easched.Optimal(tasks, 4, model)
	if err != nil {
		t.Fatal(err)
	}
	nec := der.FinalEnergy / sol.Energy
	if nec < 1.0-1e-6 || nec > 1.05 {
		t.Errorf("NEC(F2) = %.4f outside [1, 1.05] on the worked example", nec)
	}
	rep, err := easched.Simulate(der.Final, model)
	if err != nil || !rep.OK() {
		t.Fatalf("simulation failed: %v / %v", err, rep.Violations)
	}
}

func TestDiscretePipelineEndToEnd(t *testing.T) {
	// XScale flow: fit → schedule → quantize (both policies) → the
	// feasibility analyzer agrees with the miss verdicts.
	tab := easched.IntelXScale()
	model, err := easched.FitTable(tab)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(123))
	tasks, err := easched.GenerateTasks(rng, easched.XScaleWorkload(15))
	if err != nil {
		t.Fatal(err)
	}
	res, err := easched.Schedule(tasks, 4, model, easched.DER)
	if err != nil {
		t.Fatal(err)
	}
	up := easched.Quantize(res.Final, tab)
	split := easched.QuantizeSplit(res.Final, tab)
	if split.Energy > up.Energy+1e-6 {
		t.Errorf("two-level %.2f worse than round-up %.2f", split.Energy, up.Energy)
	}
	if up.Missed {
		// A quantization miss implies the peak requirement exceeded
		// f_max; the flow analyzer must then also declare infeasibility
		// at f_max... only if the instance itself is infeasible, so just
		// assert the implication's premise.
		var peak float64
		for _, f := range res.FinalFrequencies {
			peak = math.Max(peak, f)
		}
		if peak <= tab.MaxFrequency() {
			t.Errorf("miss reported but peak %.1f ≤ f_max %.1f", peak, tab.MaxFrequency())
		}
	}
}
