#!/bin/sh
# cluster_smoke.sh — end-to-end smoke for the schedrouter cluster tier.
#
# Builds cmd/schedd, cmd/schedrouter, and cmd/schedload, starts three
# schedd backends plus one router in front, drives many concurrent
# streaming sessions through the router (POST /v1/sessions + SSE event
# streams), and SIGKILLs one backend mid-run. Asserts the cluster
# contract:
#
#   1. the router never crashes, and neither do the surviving backends;
#   2. every session completes: sessions homed on the killed backend
#      migrate to a survivor via the dispatch snapshot/restore path;
#   3. zero client-side validator failures and zero missed deadlines on
#      the final realized schedules;
#   4. zero SSE sequence gaps: the router renumbers the fan-through
#      stream so migration is invisible in the event ids;
#   5. the migration actually happened (schedrouter_migrations_total
#      >= 1 in the router's /metrics).
#
# Env knobs: CLUSTER_SESSIONS (default 50), CLUSTER_BATCHES (10),
# CLUSTER_RATE (1.0), CLUSTER_SEED (42), CLUSTER_PORT (18400, router;
# backends use PORT+1..PORT+3), CLUSTER_BUILDFLAGS (e.g. -race), GO (go).
set -eu

GO="${GO:-go}"
SESSIONS="${CLUSTER_SESSIONS:-50}"
BATCHES="${CLUSTER_BATCHES:-10}"
RATE="${CLUSTER_RATE:-1.0}"
SEED="${CLUSTER_SEED:-42}"
PORT="${CLUSTER_PORT:-18400}"
BUILDFLAGS="${CLUSTER_BUILDFLAGS:-}"

workdir="$(mktemp -d)"
router_pid=""
b1_pid=""
b2_pid=""
b3_pid=""
load_pid=""
cleanup() {
    for pid in "$load_pid" "$router_pid" "$b1_pid" "$b2_pid" "$b3_pid"; do
        if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
            kill -9 "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "cluster-smoke: building (flags: ${BUILDFLAGS:-none})"
# shellcheck disable=SC2086
$GO build $BUILDFLAGS -o "$workdir/schedd" ./cmd/schedd
# shellcheck disable=SC2086
$GO build $BUILDFLAGS -o "$workdir/schedrouter" ./cmd/schedrouter
# shellcheck disable=SC2086
$GO build $BUILDFLAGS -o "$workdir/schedload" ./cmd/schedload

p1=$((PORT + 1)); p2=$((PORT + 2)); p3=$((PORT + 3))
echo "cluster-smoke: starting 3 schedd backends on :$p1 :$p2 :$p3"
"$workdir/schedd" -addr "127.0.0.1:$p1" -quiet 2>"$workdir/b1.log" &
b1_pid=$!
"$workdir/schedd" -addr "127.0.0.1:$p2" -quiet 2>"$workdir/b2.log" &
b2_pid=$!
"$workdir/schedd" -addr "127.0.0.1:$p3" -quiet 2>"$workdir/b3.log" &
b3_pid=$!

for p in "$p1" "$p2" "$p3"; do
    i=0
    until curl -fsS "http://127.0.0.1:$p/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 50 ]; then
            echo "cluster-smoke: FAIL: backend :$p never became healthy" >&2
            exit 1
        fi
        sleep 0.1
    done
done

echo "cluster-smoke: starting schedrouter on :$PORT"
"$workdir/schedrouter" -addr "127.0.0.1:$PORT" \
    -backends "http://127.0.0.1:$p1,http://127.0.0.1:$p2,http://127.0.0.1:$p3" \
    -health-interval 250ms -health-failures 2 \
    2>"$workdir/router.log" &
router_pid=$!

base="http://127.0.0.1:$PORT"
i=0
until curl -fsS "$base/readyz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "cluster-smoke: FAIL: router never became ready" >&2
        cat "$workdir/router.log" >&2
        exit 1
    fi
    sleep 0.1
done

echo "cluster-smoke: driving $SESSIONS streaming sessions through the router"
"$workdir/schedload" -addr "$base" -stream -router \
    -sessions "$SESSIONS" -batches "$BATCHES" -rate "$RATE" \
    -seed "$SEED" >"$workdir/stream.out" 2>"$workdir/stream.err" &
load_pid=$!

# SIGKILL one backend as soon as every session is established (the
# router's created counter reaches the target): at that point each
# session still has nearly its whole arrival trace ahead of it, so the
# ~1/3 homed on the victim are guaranteed to need migration. A fixed
# sleep races the run length, which varies widely with build flags.
i=0
while :; do
    created="$(curl -fsS "$base/metrics" 2>/dev/null \
        | awk '/^schedrouter_sessions_created_total /{print $2}')"
    [ "${created:-0}" -ge "$SESSIONS" ] && break
    if ! kill -0 "$load_pid" 2>/dev/null; then
        echo "cluster-smoke: FAIL: load generator exited before the kill (run too short?)" >&2
        cat "$workdir/stream.out" "$workdir/stream.err" >&2
        exit 1
    fi
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "cluster-smoke: FAIL: sessions never all got created" >&2
        cat "$workdir/stream.out" "$workdir/stream.err" "$workdir/router.log" >&2
        exit 1
    fi
    sleep 0.1
done
echo "cluster-smoke: SIGKILLing backend :$p2 mid-run"
kill -9 "$b2_pid"
b2_pid=""

if ! wait "$load_pid"; then
    echo "cluster-smoke: FAIL: schedload exited nonzero" >&2
    cat "$workdir/stream.out" "$workdir/stream.err" >&2
    cat "$workdir/router.log" >&2
    exit 1
fi
load_pid=""
cat "$workdir/stream.out"

if ! kill -0 "$router_pid" 2>/dev/null; then
    echo "cluster-smoke: FAIL: router crashed during the run" >&2
    cat "$workdir/router.log" >&2
    exit 1
fi
for pid in "$b1_pid" "$b3_pid"; do
    if ! kill -0 "$pid" 2>/dev/null; then
        echo "cluster-smoke: FAIL: a surviving backend crashed" >&2
        exit 1
    fi
done

if ! grep -q "sessions:   $SESSIONS ok / $SESSIONS total" "$workdir/stream.out"; then
    echo "cluster-smoke: FAIL: not every session completed" >&2
    exit 1
fi
if ! grep -q "validator:  0 failures" "$workdir/stream.out"; then
    echo "cluster-smoke: FAIL: validator failures in final schedules" >&2
    exit 1
fi
if ! grep -qE "events: +[0-9]+ received, 0 seq gaps" "$workdir/stream.out"; then
    echo "cluster-smoke: FAIL: SSE sequence gaps detected" >&2
    exit 1
fi

metrics="$(curl -fsS "$base/metrics")"
if ! echo "$metrics" | grep -q 'schedrouter_migrations_total [1-9]'; then
    echo "cluster-smoke: FAIL: no migration recorded — the kill proved nothing" >&2
    echo "$metrics" | grep schedrouter_ >&2 || true
    exit 1
fi
if ! echo "$metrics" | grep -q 'schedrouter_backend_up{backend="127.0.0.1:'"$p2"'"} 0'; then
    echo "cluster-smoke: FAIL: killed backend still reported up" >&2
    exit 1
fi

echo "cluster-smoke: draining the router"
kill -TERM "$router_pid"
i=0
while kill -0 "$router_pid" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "cluster-smoke: FAIL: router did not exit after SIGTERM" >&2
        exit 1
    fi
    sleep 0.1
done
router_pid=""

echo "cluster-smoke: PASS — backend killed mid-run, all sessions finished, 0 validator failures, 0 seq gaps"
