#!/bin/sh
# chaos.sh — fault-injection soak for the schedd serving stack.
#
# Builds cmd/schedd and cmd/schedload, starts the daemon with every
# fault-injection point firing (aggregate rate well above 10%), drives a
# validating closed-loop load against it, and asserts the robustness
# contract:
#
#   1. the daemon never crashes;
#   2. every 200 response passes the client-side universal validator
#      (schedload exits nonzero on any validator failure);
#   3. injected faults actually fired and breaker activity is visible
#      in /metrics;
#   4. the daemon still drains cleanly on SIGTERM afterwards.
#
# Env knobs: CHAOS_DURATION (default 10s), CHAOS_SEED (42),
# CHAOS_PORT (18321), CHAOS_BUILDFLAGS (e.g. -race), GO (go).
set -eu

GO="${GO:-go}"
DURATION="${CHAOS_DURATION:-10s}"
SEED="${CHAOS_SEED:-42}"
PORT="${CHAOS_PORT:-18321}"
BUILDFLAGS="${CHAOS_BUILDFLAGS:-}"
FAULTS="solver_panic=0.05,solver_delay=0.05,alloc_error=0.05,cache_corrupt=0.10,validator_reject=0.05,io_error=0.05"

workdir="$(mktemp -d)"
server_pid=""
cleanup() {
    if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
        kill -9 "$server_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "chaos: building (flags: ${BUILDFLAGS:-none})"
# shellcheck disable=SC2086
$GO build $BUILDFLAGS -o "$workdir/schedd" ./cmd/schedd
# shellcheck disable=SC2086
$GO build $BUILDFLAGS -o "$workdir/schedload" ./cmd/schedload

echo "chaos: starting schedd on :$PORT with faults $FAULTS (seed=$SEED)"
"$workdir/schedd" -addr "127.0.0.1:$PORT" -quiet \
    -faults "$FAULTS" -fault-seed "$SEED" -fault-delay 20ms \
    -breaker-threshold 5 -breaker-cooldown 200ms -breaker-max-cooldown 2s \
    2>"$workdir/schedd.log" &
server_pid=$!

base="http://127.0.0.1:$PORT"
i=0
until curl -fsS "$base/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "chaos: FAIL: schedd never became healthy" >&2
        cat "$workdir/schedd.log" >&2
        exit 1
    fi
    sleep 0.1
done

echo "chaos: soaking for $DURATION"
# -tolerate-errors: exhausted-retry HTTP errors are within budget under
# injected faults; validator failures still exit nonzero, and that is
# the invariant this soak exists to enforce.
"$workdir/schedload" -addr "$base" -duration "$DURATION" -c 8 \
    -retries 4 -tolerate-errors -seed "$SEED" | tee "$workdir/load.out"

if ! kill -0 "$server_pid" 2>/dev/null; then
    echo "chaos: FAIL: schedd crashed during the soak" >&2
    cat "$workdir/schedd.log" >&2
    exit 1
fi
if ! grep -q "requests:.* 0 validator failures" "$workdir/load.out"; then
    echo "chaos: FAIL: validator failures in served schedules" >&2
    exit 1
fi

metrics="$(curl -fsS "$base/metrics")"
echo "$metrics" | grep -E "schedd_faults_injected_total|schedd_breaker_|schedd_degraded|schedd_solve_panics|schedd_cache_corruptions|schedd_fallback" \
    || { echo "chaos: FAIL: robustness metrics missing from /metrics" >&2; exit 1; }
if ! echo "$metrics" | grep -q 'schedd_faults_injected_total{point="solver_panic"} [1-9]'; then
    echo "chaos: FAIL: no solver panics were injected — soak proved nothing" >&2
    exit 1
fi

echo "chaos: draining schedd"
kill -TERM "$server_pid"
i=0
while kill -0 "$server_pid" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "chaos: FAIL: schedd did not exit after SIGTERM" >&2
        exit 1
    fi
    sleep 0.1
done
server_pid=""
echo "chaos: PASS — no crashes, no invalid schedules served"
