#!/bin/sh
# dispatch_soak.sh — streaming-session soak for the live dispatch runtime.
#
# Builds cmd/schedd and cmd/schedload, starts the daemon, and drives many
# concurrent streaming sessions (POST /v1/sessions + SSE event streams)
# with Poisson arrival traces, asserting the session contract:
#
#   1. the daemon never crashes;
#   2. every committed prefix and every final schedule passes the
#      client-side universal validator (schedload -stream exits nonzero
#      on any validator failure or missed deadline under ReplanDER);
#   3. per-session competitive ratios are reported and session activity
#      is visible in /metrics;
#   4. SIGTERM drains cleanly: a live SSE subscriber receives the final
#      event and a graceful stream-closed terminator, and the daemon
#      exits.
#
# Env knobs: SOAK_SESSIONS (default 50), SOAK_BATCHES (20), SOAK_RATE
# (0.5), SOAK_SEED (42), SOAK_PORT (18322), SOAK_BUILDFLAGS (e.g.
# -race), GO (go).
set -eu

GO="${GO:-go}"
SESSIONS="${SOAK_SESSIONS:-50}"
BATCHES="${SOAK_BATCHES:-20}"
RATE="${SOAK_RATE:-0.5}"
SEED="${SOAK_SEED:-42}"
PORT="${SOAK_PORT:-18322}"
BUILDFLAGS="${SOAK_BUILDFLAGS:-}"

workdir="$(mktemp -d)"
server_pid=""
sse_pid=""
cleanup() {
    if [ -n "$sse_pid" ] && kill -0 "$sse_pid" 2>/dev/null; then
        kill -9 "$sse_pid" 2>/dev/null || true
    fi
    if [ -n "$server_pid" ] && kill -0 "$server_pid" 2>/dev/null; then
        kill -9 "$server_pid" 2>/dev/null || true
    fi
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "dispatch-soak: building (flags: ${BUILDFLAGS:-none})"
# shellcheck disable=SC2086
$GO build $BUILDFLAGS -o "$workdir/schedd" ./cmd/schedd
# shellcheck disable=SC2086
$GO build $BUILDFLAGS -o "$workdir/schedload" ./cmd/schedload

echo "dispatch-soak: starting schedd on :$PORT"
"$workdir/schedd" -addr "127.0.0.1:$PORT" -quiet \
    2>"$workdir/schedd.log" &
server_pid=$!

base="http://127.0.0.1:$PORT"
i=0
until curl -fsS "$base/healthz" >/dev/null 2>&1; do
    i=$((i + 1))
    if [ "$i" -gt 50 ]; then
        echo "dispatch-soak: FAIL: schedd never became healthy" >&2
        cat "$workdir/schedd.log" >&2
        exit 1
    fi
    sleep 0.1
done

echo "dispatch-soak: driving $SESSIONS streaming sessions ($BATCHES Poisson batches each)"
# -retries absorbs transient 429s from the admission gate under the
# thundering herd of session creates; validator failures and missed
# deadlines still exit nonzero, and those are the invariants this soak
# exists to enforce.
"$workdir/schedload" -addr "$base" -stream \
    -sessions "$SESSIONS" -batches "$BATCHES" -rate "$RATE" \
    -retries 5 -seed "$SEED" | tee "$workdir/stream.out"

if ! kill -0 "$server_pid" 2>/dev/null; then
    echo "dispatch-soak: FAIL: schedd crashed during the soak" >&2
    cat "$workdir/schedd.log" >&2
    exit 1
fi
if ! grep -q "validator:  0 failures" "$workdir/stream.out"; then
    echo "dispatch-soak: FAIL: validator failures in committed schedules" >&2
    exit 1
fi
if ! grep -q "ratio:" "$workdir/stream.out"; then
    echo "dispatch-soak: FAIL: no competitive ratios reported" >&2
    exit 1
fi

metrics="$(curl -fsS "$base/metrics")"
echo "$metrics" | grep -E "schedd_sessions_opened_total|schedd_session_replans_total|schedd_session_replan_latency_ms" \
    || { echo "dispatch-soak: FAIL: session metrics missing from /metrics" >&2; exit 1; }
if ! echo "$metrics" | grep -q 'schedd_session_replans_total [1-9]'; then
    echo "dispatch-soak: FAIL: no replans recorded — soak proved nothing" >&2
    exit 1
fi

# Open one more session with a live SSE subscriber, then SIGTERM: drain
# must run the session to horizon, deliver the final event, and close
# the stream gracefully (curl exits 0 only on a server-side close).
sid="$(curl -fsS "$base/v1/sessions" \
    -d '{"algorithm":"ReplanDER","cores":2,"model":{"alpha":3}}' \
    | sed 's/.*"id":"\([^"]*\)".*/\1/')"
curl -sS -N --max-time 30 "$base/v1/sessions/$sid/events" \
    >"$workdir/sse.out" 2>/dev/null &
sse_pid=$!
sleep 0.3
curl -fsS "$base/v1/sessions/$sid/tasks" \
    -d '{"tasks":[{"release":0,"work":4,"deadline":8},{"release":0,"work":2,"deadline":6}]}' \
    >/dev/null

echo "dispatch-soak: draining schedd with a live SSE subscriber"
kill -TERM "$server_pid"
i=0
while kill -0 "$server_pid" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "dispatch-soak: FAIL: schedd did not exit after SIGTERM" >&2
        exit 1
    fi
    sleep 0.1
done
server_pid=""

if ! wait "$sse_pid"; then
    echo "dispatch-soak: FAIL: SSE stream dropped instead of closing gracefully" >&2
    cat "$workdir/sse.out" >&2
    exit 1
fi
sse_pid=""
if ! grep -q "event: final" "$workdir/sse.out"; then
    echo "dispatch-soak: FAIL: subscriber never received the final event on drain" >&2
    cat "$workdir/sse.out" >&2
    exit 1
fi
if ! grep -q ": stream closed" "$workdir/sse.out"; then
    echo "dispatch-soak: FAIL: stream ended without the graceful terminator" >&2
    cat "$workdir/sse.out" >&2
    exit 1
fi

echo "dispatch-soak: PASS — no crashes, no invalid prefixes, clean SSE drain"
