#!/bin/sh
# crash_smoke.sh — end-to-end crash-recovery smoke for the durable
# session journal (schedd -data-dir, internal/journal).
#
# Builds cmd/schedd, cmd/schedload, and cmd/schedjournal, starts one
# journaled schedd, drives many concurrent streaming sessions with
# reconnecting SSE subscribers, SIGKILLs the daemon mid-run, dumps the
# journal state as a baseline, restarts the daemon over the same data
# directory, and asserts the durability contract:
#
#   1. the restarted schedd recovers the in-flight sessions from their
#      write-ahead logs (schedd_sessions_recovered_total >= 1, zero
#      recovery failures);
#   2. the committed prefix survives the crash verbatim: `schedjournal
#      verify` proves every baseline session's committed segments,
#      counters, and task table are a prefix of the recovered state;
#   3. every session completes: the load generator rides out the outage
#      on its retry budget and reconnecting SSE streams;
#   4. zero client-side validator failures on the final schedules;
#   5. zero SSE sequence gaps: recovered streams replay the journaled
#      event ring and the client dedupes by id, so at-least-once
#      delivery still reads as exactly-once.
#
# Env knobs: CRASH_SESSIONS (default 25), CRASH_BATCHES (12),
# CRASH_RATE (1.0), CRASH_SEED (42), CRASH_PORT (18500),
# CRASH_FSYNC (interval), CRASH_BUILDFLAGS (e.g. -race), GO (go).
set -eu

GO="${GO:-go}"
SESSIONS="${CRASH_SESSIONS:-25}"
BATCHES="${CRASH_BATCHES:-12}"
RATE="${CRASH_RATE:-1.0}"
SEED="${CRASH_SEED:-42}"
PORT="${CRASH_PORT:-18500}"
FSYNC="${CRASH_FSYNC:-interval}"
BUILDFLAGS="${CRASH_BUILDFLAGS:-}"

workdir="$(mktemp -d)"
datadir="$workdir/data"
schedd_pid=""
load_pid=""
cleanup() {
    for pid in "$load_pid" "$schedd_pid"; do
        if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
            kill -9 "$pid" 2>/dev/null || true
        fi
    done
    rm -rf "$workdir"
}
trap cleanup EXIT INT TERM

echo "crash-smoke: building (flags: ${BUILDFLAGS:-none})"
# shellcheck disable=SC2086
$GO build $BUILDFLAGS -o "$workdir/schedd" ./cmd/schedd
# shellcheck disable=SC2086
$GO build $BUILDFLAGS -o "$workdir/schedload" ./cmd/schedload
# shellcheck disable=SC2086
$GO build $BUILDFLAGS -o "$workdir/schedjournal" ./cmd/schedjournal

base="http://127.0.0.1:$PORT"
start_schedd() {
    "$workdir/schedd" -addr "127.0.0.1:$PORT" \
        -data-dir "$datadir" -fsync "$FSYNC" -quiet 2>>"$workdir/schedd.log" &
    schedd_pid=$!
    i=0
    until curl -fsS "$base/healthz" >/dev/null 2>&1; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "crash-smoke: FAIL: schedd never became healthy" >&2
            cat "$workdir/schedd.log" >&2
            exit 1
        fi
        sleep 0.1
    done
}

echo "crash-smoke: starting journaled schedd on :$PORT (fsync=$FSYNC)"
start_schedd

echo "crash-smoke: driving $SESSIONS streaming sessions with reconnecting subscribers"
"$workdir/schedload" -addr "$base" -stream -reconnect \
    -sessions "$SESSIONS" -batches "$BATCHES" -rate "$RATE" \
    -seed "$SEED" -retries 30 \
    >"$workdir/stream.out" 2>"$workdir/stream.err" &
load_pid=$!

# SIGKILL the daemon as soon as every session is established: each
# session still has most of its arrival trace ahead of it, so recovery
# has real in-flight state to restore. A fixed sleep would race the run
# length, which varies widely with build flags.
i=0
while :; do
    opened="$(curl -fsS "$base/metrics" 2>/dev/null \
        | awk '/^schedd_sessions_opened_total /{print $2}')"
    [ "${opened:-0}" -ge "$SESSIONS" ] && break
    if ! kill -0 "$load_pid" 2>/dev/null; then
        echo "crash-smoke: FAIL: load generator exited before the kill (run too short?)" >&2
        cat "$workdir/stream.out" "$workdir/stream.err" >&2
        exit 1
    fi
    i=$((i + 1))
    if [ "$i" -gt 300 ]; then
        echo "crash-smoke: FAIL: sessions never all got created" >&2
        cat "$workdir/stream.out" "$workdir/stream.err" "$workdir/schedd.log" >&2
        exit 1
    fi
    sleep 0.05
done
echo "crash-smoke: SIGKILLing schedd mid-run ($opened sessions opened)"
kill -9 "$schedd_pid"
schedd_pid=""

echo "crash-smoke: dumping the post-crash journal baseline"
"$workdir/schedjournal" dump -data-dir "$datadir" -o "$workdir/baseline.json"
baseline_sessions="$(grep -c '"id":' "$workdir/baseline.json" || true)"
if [ "${baseline_sessions:-0}" -lt 1 ]; then
    echo "crash-smoke: FAIL: empty journal baseline — nothing was durable at kill time" >&2
    cat "$workdir/baseline.json" >&2
    exit 1
fi

echo "crash-smoke: restarting schedd over the same data dir"
start_schedd

recovered="$(curl -fsS "$base/metrics" | awk '/^schedd_sessions_recovered_total /{print $2}')"
failed="$(curl -fsS "$base/metrics" | awk '/^schedd_sessions_recovery_failed_total /{print $2}')"
if [ "${recovered:-0}" -lt 1 ]; then
    echo "crash-smoke: FAIL: no sessions recovered — the kill proved nothing" >&2
    cat "$workdir/schedd.log" >&2
    exit 1
fi
if [ "${failed:-0}" -ne 0 ]; then
    echo "crash-smoke: FAIL: $failed sessions failed recovery" >&2
    cat "$workdir/schedd.log" >&2
    exit 1
fi
echo "crash-smoke: recovered $recovered sessions, 0 failures"

echo "crash-smoke: verifying the committed prefix survived verbatim"
if ! "$workdir/schedjournal" verify -data-dir "$datadir" \
        -baseline "$workdir/baseline.json" >"$workdir/verify.out"; then
    echo "crash-smoke: FAIL: journal verify found regressed sessions" >&2
    cat "$workdir/verify.out" >&2
    exit 1
fi
tail -1 "$workdir/verify.out"

if ! wait "$load_pid"; then
    echo "crash-smoke: FAIL: schedload exited nonzero" >&2
    cat "$workdir/stream.out" "$workdir/stream.err" >&2
    cat "$workdir/schedd.log" >&2
    exit 1
fi
load_pid=""
cat "$workdir/stream.out"

if ! kill -0 "$schedd_pid" 2>/dev/null; then
    echo "crash-smoke: FAIL: restarted schedd crashed during the run" >&2
    cat "$workdir/schedd.log" >&2
    exit 1
fi

if ! grep -q "sessions:   $SESSIONS ok / $SESSIONS total" "$workdir/stream.out"; then
    echo "crash-smoke: FAIL: not every session completed across the crash" >&2
    exit 1
fi
if ! grep -q "validator:  0 failures" "$workdir/stream.out"; then
    echo "crash-smoke: FAIL: validator failures in final schedules" >&2
    exit 1
fi
if ! grep -qE "events: +[0-9]+ received, 0 seq gaps" "$workdir/stream.out"; then
    echo "crash-smoke: FAIL: SSE sequence gaps across the crash" >&2
    exit 1
fi

echo "crash-smoke: draining the restarted schedd"
kill -TERM "$schedd_pid"
i=0
while kill -0 "$schedd_pid" 2>/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "crash-smoke: FAIL: schedd did not exit after SIGTERM" >&2
        exit 1
    fi
    sleep 0.1
done
schedd_pid=""

echo "crash-smoke: PASS — SIGKILL mid-run, $recovered sessions recovered, committed prefixes intact, all $SESSIONS sessions finished, 0 validator failures, 0 seq gaps"
