// Governors: what deadline-aware DVFS planning buys over the reactive
// frequency governors operating systems actually ship. On an Intel
// XScale quad-core, the same job batch is executed by (a) the paper's
// DER-based schedule quantized to the real operating points, and (b)
// cpufreq-style performance / ondemand / conservative governors driving
// global EDF. Energy uses the measured table powers for all of them.
//
// Run with: go run ./examples/governors [-n 20] [-seed 5] [-period 5]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"repro/easched"
)

func main() {
	n := flag.Int("n", 20, "number of jobs")
	seed := flag.Int64("seed", 5, "workload seed")
	period := flag.Float64("period", 5, "governor sampling period (seconds)")
	flag.Parse()

	tab := easched.IntelXScale()
	model, err := easched.FitTable(tab)
	if err != nil {
		log.Fatal(err)
	}
	tasks, err := easched.GenerateTasks(rand.New(rand.NewSource(*seed)), easched.XScaleWorkload(*n))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d jobs on a quad-core XScale; governor period %.0fs\n\n", *n, *period)

	type row struct {
		name   string
		energy float64
		misses int
	}
	var rows []row

	// The paper's pipeline, quantized to the real frequency grid.
	plan, err := easched.Schedule(tasks, 4, model, easched.DER)
	if err != nil {
		log.Fatal(err)
	}
	q := easched.Quantize(plan.Final, tab)
	rows = append(rows, row{"DER schedule (paper, quantized)", q.Energy, len(q.MissedTasks)})
	split := easched.QuantizeSplit(plan.Final, tab)
	rows = append(rows, row{"DER schedule + two-level split", split.Energy, len(split.MissedTasks)})

	for _, g := range []struct {
		name   string
		policy easched.GovernorPolicy
	}{
		{"performance governor", easched.GovernorPerformance},
		{"ondemand governor", easched.GovernorOndemand},
		{"conservative governor", easched.GovernorConservative},
	} {
		res, err := easched.RunGovernor(tasks, 4, tab, g.policy, *period)
		if err != nil {
			log.Fatal(err)
		}
		rows = append(rows, row{g.name, res.Energy, len(res.MissedTasks)})
	}

	fmt.Printf("%-34s %14s %8s\n", "policy", "energy (mW·s)", "misses")
	base := rows[0].energy
	for _, r := range rows {
		fmt.Printf("%-34s %14.0f %8d   (%+.1f%%)\n", r.name, r.energy, r.misses,
			100*(r.energy-base)/base)
	}
	fmt.Println("\nGovernors are deadline-oblivious: the reactive ones ramp up too late")
	fmt.Println("for tight jobs (misses), while pinning the top frequency wastes energy.")
	fmt.Println("The paper's planner knows the deadlines and spends exactly enough.")
}
