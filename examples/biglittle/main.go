// Biglittle: the two extensions beyond the paper working together on an
// asymmetric mobile SoC. Four cores share the XScale dynamic curve but
// leak differently (two "big" leaky cores, two frugal "LITTLE" ones), and
// the frequency range is capped at the table maximum. The workload is
// dense enough that the plain pipeline would miss deadlines; the
// cap-aware scheduler guarantees none, and the leakage-aware assignment
// then places the busiest cores on the frugal silicon.
//
// Run with: go run ./examples/biglittle [-n 40] [-seed 7]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"

	"repro/easched"
)

func main() {
	n := flag.Int("n", 40, "number of jobs")
	seed := flag.Int64("seed", 7, "workload seed")
	flag.Parse()

	tab := easched.IntelXScale()
	fitted, err := easched.FitTable(tab)
	if err != nil {
		log.Fatal(err)
	}
	// Asymmetric leakage around the fitted static power: big cores leak
	// 1.6x the fitted value, LITTLE cores 0.4x.
	plat, err := easched.NewHeteroPlatform(fitted.Gamma, fitted.Alpha,
		1.6*fitted.P0, 1.6*fitted.P0, 0.4*fitted.P0, 0.4*fitted.P0)
	if err != nil {
		log.Fatal(err)
	}
	model := plat.UniformModel(plat.MeanStaticPower())

	// A dense workload (the fig11-stress regime).
	params := easched.XScaleWorkload(*n)
	params.ReleaseHi = 100
	params.IntensityLo = 0.5
	tasks, err := easched.GenerateTasks(rand.New(rand.NewSource(*seed)), params)
	if err != nil {
		log.Fatal(err)
	}

	// Plain pipeline: check whether it would exceed the frequency range.
	plain, err := easched.Schedule(tasks, 4, model, easched.DER)
	if err != nil {
		log.Fatal(err)
	}
	qPlain := easched.Quantize(plain.Final, tab)
	fmt.Printf("plain DER schedule: peak frequency %.0f MHz (f_max %.0f), missed tasks: %d\n",
		plain.Final.PeakFrequency(), tab.MaxFrequency(), len(qPlain.MissedTasks))

	// Cap-aware scheduling: guaranteed miss-free on feasible instances.
	capped, err := easched.ScheduleCapped(tasks, 4, model, easched.DER, tab.MaxFrequency())
	if errors.Is(err, easched.ErrInfeasibleAtCap) {
		log.Fatal("this instance is infeasible at f_max — no scheduler could serve it")
	}
	if err != nil {
		log.Fatal(err)
	}
	qCap := easched.Quantize(capped.Schedule, tab)
	fmt.Printf("cap-aware schedule:  peak frequency %.0f MHz, missed tasks: %d (fallback used: %v)\n\n",
		capped.Schedule.PeakFrequency(), len(qCap.MissedTasks), capped.UsedFallback)

	// Leakage-aware core assignment on the capped schedule.
	identity, err := plat.Energy(capped.Schedule, []int{0, 1, 2, 3})
	if err != nil {
		log.Fatal(err)
	}
	perm, err := plat.AssignCores(capped.Schedule)
	if err != nil {
		log.Fatal(err)
	}
	assigned, err := plat.Energy(capped.Schedule, perm)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-34s %14s\n", "mapping", "energy (mW·s)")
	fmt.Printf("%-34s %14.0f\n", "naive (big cores first)", identity)
	fmt.Printf("%-34s %14.0f   (-%.1f%%)\n", "leakage-aware assignment", assigned,
		100*(identity-assigned)/identity)
	fmt.Printf("\nvirtual→physical mapping: %v (cores 0,1 leak 1.6x; 2,3 leak 0.4x)\n", perm)
	fmt.Println("\nper-core usage of the capped schedule:")
	fmt.Print(capped.Schedule.SummaryTable())
}
