// Serverfarm: energy-aware batch scheduling with core parking. A server
// receives aperiodic batch jobs (the paper's workload model) on a
// many-core processor with non-trivial static power; following
// Section VI.D, we simulate every core count before execution and run the
// schedule that minimizes energy — parking the remaining cores.
//
// Run with: go run ./examples/serverfarm [-jobs 15] [-maxcores 12] [-p0 0.3]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"repro/easched"
)

func main() {
	jobs := flag.Int("jobs", 15, "number of batch jobs")
	maxCores := flag.Int("maxcores", 12, "cores physically available")
	p0 := flag.Float64("p0", 0.3, "per-core static power")
	seed := flag.Int64("seed", 11, "workload seed")
	flag.Parse()

	model := easched.NewModel(3, *p0)
	tasks, err := easched.GenerateTasks(rand.New(rand.NewSource(*seed)), easched.PaperWorkload(*jobs))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d jobs, model %v, up to %d cores\n\n", *jobs, model, *maxCores)

	// Section VI.D: simulate every core count, pick the cheapest.
	sr, err := easched.SearchCores(tasks, *maxCores, model, easched.DER)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%-8s %12s\n", "cores", "energy (F2)")
	for k, e := range sr.EnergyByCores {
		marker := ""
		if k+1 == sr.Cores {
			marker = "  ← selected"
		}
		fmt.Printf("%-8d %12.3f%s\n", k+1, e, marker)
	}

	all := sr.EnergyByCores[*maxCores-1]
	single := sr.EnergyByCores[0]
	fmt.Printf("\nselected %d cores: %.2f%% below the single-core schedule, %.2f%% below using all %d\n",
		sr.Cores, 100*(single-sr.Result.FinalEnergy)/single,
		100*(all-sr.Result.FinalEnergy)/all, *maxCores)
	fmt.Println("(idle cores sleep at zero power, so past the knee the curve flattens;")
	fmt.Println(" the search mostly guards against the heuristic's low-core penalty)")

	// Validate the selected schedule end to end in the simulator.
	rep, err := easched.Simulate(sr.Result.Final, model)
	if err != nil {
		log.Fatal(err)
	}
	if !rep.OK() {
		log.Fatalf("schedule failed simulation: %v", rep.Violations)
	}
	fmt.Printf("simulated: energy %.3f, utilization per core:", rep.Energy)
	for _, u := range rep.Utilization {
		fmt.Printf(" %.0f%%", 100*u)
	}
	fmt.Println()

	fmt.Println("\nselected schedule:")
	fmt.Print(sr.Result.Final.Gantt(72))
}
