// Periodic: scheduling a classic periodic real-time task system with the
// paper's aperiodic machinery. An avionics-style periodic system is
// unrolled over one hyperperiod into jobs, scheduled with the DER-based
// pipeline on a dual-core DVFS processor, and compared against
// race-to-idle EDF at the minimal feasible speed — showing how much a
// periodic system saves from deadline-aware frequency scaling.
//
// Run with: go run ./examples/periodic [-cores 2] [-p0 0.05] [-sporadic]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"repro/easched"
	"repro/internal/online"
)

// onlineResult aliases the baseline result type for readability.
type onlineResult = online.Result

func main() {
	cores := flag.Int("cores", 2, "number of cores")
	p0 := flag.Float64("p0", 0.05, "static power")
	sporadic := flag.Bool("sporadic", false, "use randomized sporadic arrivals instead of strict periods")
	seed := flag.Int64("seed", 9, "sporadic arrival seed")
	flag.Parse()

	// A small avionics-flavored system: sensor fusion, control loop,
	// telemetry, and a slow health monitor.
	sys := easched.PeriodicSystem{
		{Period: 10, WCET: 2},               // sensor fusion, implicit deadline
		{Period: 20, WCET: 5, Deadline: 15}, // control, constrained deadline
		{Period: 40, WCET: 8, Offset: 5},    // telemetry burst
		{Period: 80, WCET: 6, Deadline: 60}, // health monitor
	}
	hp, err := easched.Hyperperiod(sys, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("system utilization %.3f, hyperperiod %g\n", sys.Utilization(), hp)

	var jobs easched.TaskSet
	if *sporadic {
		jobs, err = easched.UnrollSporadic(rand.New(rand.NewSource(*seed)), sys, hp, 0.3)
	} else {
		jobs, err = easched.Unroll(sys, hp)
	}
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("unrolled %d jobs over one hyperperiod\n\n", len(jobs))

	model := easched.NewModel(3, *p0)

	// The paper's DER-based schedule.
	plan, err := easched.Schedule(jobs, *cores, model, easched.DER)
	if err != nil {
		log.Fatal(err)
	}
	// Race-to-idle EDF: global EDF is not optimal on multiprocessors, so
	// the minimal migratory-feasible speed may not suffice for it — step
	// the speed up until EDF actually meets every deadline (what a
	// practical fixed-frequency deployment would have to provision).
	minSpeed, err := easched.MinimalSpeed(jobs, *cores)
	if err != nil {
		log.Fatal(err)
	}
	speed := minSpeed
	var edf *onlineResult
	for mult := 1.001; mult < 4; mult *= 1.05 {
		speed = minSpeed * mult
		r, err := easched.ScheduleFixedSpeedEDF(jobs, *cores, model, speed)
		if err != nil {
			log.Fatal(err)
		}
		if len(r.MissedTasks) == 0 {
			edf = r
			break
		}
	}
	if edf == nil {
		log.Fatal("EDF never became feasible — raise the multiplier bound")
	}
	fmt.Printf("minimal migratory speed %.4f; EDF needs %.4f to meet all deadlines\n", minSpeed, speed)
	// The certified optimum, for reference.
	sol, err := easched.Optimal(jobs, *cores, model)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-34s %12s %10s\n", "scheduler", "energy", "NEC")
	fmt.Printf("%-34s %12.4f %10.4f\n", "DER-based subinterval (paper)", plan.FinalEnergy, plan.FinalEnergy/sol.Energy)
	fmt.Printf("%-34s %12.4f %10.4f\n", "race-to-idle EDF (fixed speed)", edf.Energy, edf.Energy/sol.Energy)
	fmt.Printf("%-34s %12.4f %10s\n", "convex optimum", sol.Energy, "1.0000")

	saving := 100 * (edf.Energy - plan.FinalEnergy) / edf.Energy
	if saving >= 0 {
		fmt.Printf("\nDVFS planning saves %.1f%% over the tuned fixed speed here.\n", saving)
	} else {
		fmt.Printf("\nThe tuned fixed speed wins by %.1f%% here: a steady periodic load\n", -saving)
		fmt.Println("with low static power is the fixed-frequency sweet spot. Raise -p0")
		fmt.Println("(static power) or use -sporadic bursts and the planner pulls ahead —")
		fmt.Println("and unlike the tuned speed, it never needed a feasibility search.")
	}
	fmt.Println("\nDER-based schedule over the hyperperiod:")
	fmt.Print(plan.Final.Gantt(76))
}
