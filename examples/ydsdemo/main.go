// Ydsdemo: the introductory example of the paper (Section I.B). Runs the
// classic YDS optimal algorithm on the three-task uniprocessor instance
// of Fig. 1, shows the speed profile and the EDF realization, and then
// contrasts it with the multi-core optimum of Section II (two cores,
// static power), reproducing the KKT numbers.
//
// Run with: go run ./examples/ydsdemo
package main

import (
	"fmt"
	"log"

	"repro/easched"
)

func main() {
	// Fig. 1(a): R = (0, 2, 4), D = (12, 10, 8), C = (4, 2, 4).
	tasks := easched.MustTasks(
		easched.T(0, 4, 12),
		easched.T(2, 2, 10),
		easched.T(4, 4, 8),
	)

	// --- Uniprocessor: YDS (Fig. 2(a)) ---
	sched, prof, err := easched.YDS(tasks)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("YDS speed profile (uniprocessor):")
	for _, b := range prof.Bands {
		fmt.Printf("  [%4.1f, %4.1f] speed %.3f\n", b.Start, b.End, b.Speed)
	}
	cubic := easched.NewModel(3, 0)
	fmt.Printf("energy under p(f)=f³: %.4f\n\n", sched.Energy(cubic))
	fmt.Print(sched.Gantt(72))

	// --- Two cores with static power: the Section II optimum ---
	model := easched.NewModel(3, 0.01) // p(f) = f³ + 0.01
	sol, err := easched.Optimal(tasks, 2, model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntwo-core optimum under %v:\n", model)
	fmt.Printf("  E^opt = %.6f (paper's KKT: 155/32 + 0.2 = %.6f)\n", sol.Energy, 155.0/32+0.2)
	for i, a := range sol.Avail {
		fmt.Printf("  τ%d total execution time A = %.4f\n", i+1, a)
	}

	// The lightweight heuristic gets very close at a fraction of the cost.
	res, err := easched.Schedule(tasks, 2, model, easched.DER)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nDER-based heuristic: E = %.6f (NEC %.4f)\n",
		res.FinalEnergy, res.FinalEnergy/sol.Energy)
	fmt.Print(res.Final.Gantt(72))
}
