// XScale: the paper's practical-processor scenario (Section VI.C). An
// embedded quad-core with Intel XScale operating points receives a batch
// of aperiodic jobs; we fit the continuous power model to the measured
// table, schedule with both heuristics, quantize the frequencies onto the
// real operating points, and report energy and deadline misses.
//
// Run with: go run ./examples/xscale [-n 20] [-seed 3] [-lo 0.3]
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"repro/easched"
)

func main() {
	n := flag.Int("n", 20, "number of jobs")
	seed := flag.Int64("seed", 3, "workload seed")
	lo := flag.Float64("lo", 0.1, "lower bound of the intensity range")
	flag.Parse()

	// The measured frequency/power table of the Intel XScale (Table III):
	// 150..1000 MHz, 80..1600 mW.
	tab := easched.IntelXScale()
	fmt.Println("operating points:")
	for _, l := range tab.Levels() {
		fmt.Printf("  %6.0f MHz  %6.0f mW\n", l.Frequency, l.Power)
	}

	// Fit p(f) = γ·f^α + p0 (the paper reports 3.855e-6·f^2.867 + 63.58).
	model, err := easched.FitTable(tab)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nfitted continuous model: %v\n\n", model)

	// Jobs: C ∈ [4000, 8000] Mcycles, releases over 200 s, deadlines set
	// so the required frequency lands within the usable band.
	params := easched.XScaleWorkload(*n)
	params.IntensityLo = *lo
	tasks, err := easched.GenerateTasks(rand.New(rand.NewSource(*seed)), params)
	if err != nil {
		log.Fatal(err)
	}

	even, der, err := easched.ScheduleBoth(tasks, 4, model)
	if err != nil {
		log.Fatal(err)
	}

	// Quantize the continuous schedules onto the real operating points.
	qEven := easched.Quantize(even.Final, tab)
	qDer := easched.Quantize(der.Final, tab)
	sol, err := easched.Optimal(tasks, 4, model)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-28s %14s %14s %8s\n", "schedule", "E continuous", "E quantized", "misses")
	fmt.Printf("%-28s %14.1f %14.1f %8d\n", "evenly allocating (F1)",
		even.FinalEnergy, qEven.Energy, len(qEven.MissedTasks))
	fmt.Printf("%-28s %14.1f %14.1f %8d\n", "DER-based (F2)",
		der.FinalEnergy, qDer.Energy, len(qDer.MissedTasks))
	fmt.Printf("%-28s %14.1f %14s %8s\n", "convex optimum", sol.Energy, "—", "—")

	fmt.Printf("\nquantized NEC: F1 = %.4f, F2 = %.4f\n",
		qEven.Energy/sol.Energy, qDer.Energy/sol.Energy)
	if qDer.Missed {
		fmt.Printf("DER schedule missed tasks: %v\n", qDer.MissedTasks)
	} else {
		fmt.Println("DER schedule meets every deadline on the real frequency grid.")
	}
}
