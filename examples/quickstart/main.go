// Quickstart: schedule a handful of aperiodic tasks on a quad-core DVFS
// processor with the paper's DER-based subinterval heuristic, inspect the
// resulting Gantt chart, and compare against the convex optimum.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/easched"
)

func main() {
	// The worked example of the paper (Section V.D): six tasks, written
	// as T(release, work, deadline).
	tasks := easched.MustTasks(
		easched.T(0, 8, 10),
		easched.T(2, 14, 18),
		easched.T(4, 8, 16),
		easched.T(6, 4, 14),
		easched.T(8, 10, 20),
		easched.T(12, 6, 22),
	)

	// A cubic dynamic power model without static power: p(f) = f³.
	model := easched.NewModel(3, 0)

	// Run both allocation methods on four cores.
	even, der, err := easched.ScheduleBoth(tasks, 4, model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("evenly allocating method: E = %.4f\n", even.FinalEnergy)
	fmt.Printf("DER-based method:         E = %.4f\n\n", der.FinalEnergy)

	fmt.Println("DER-based final schedule:")
	fmt.Print(der.Final.Gantt(72))

	// Per-task frequency settings chosen by the final refinement.
	fmt.Println("\nfinal frequency settings:")
	for i, f := range der.FinalFrequencies {
		fmt.Printf("  τ%d: f = %.4f (available time %.3f)\n", i+1, f, der.AvailableTime[i])
	}

	// How close is the lightweight heuristic to the true optimum?
	sol, err := easched.Optimal(tasks, 4, model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nconvex optimum E^opt = %.4f → NEC of the heuristic = %.4f\n",
		sol.Energy, der.FinalEnergy/sol.Energy)

	// Replay the schedule in the discrete-event simulator as a final
	// sanity check.
	rep, err := easched.Simulate(der.Final, model)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulator: energy %.4f, ok=%v, %d preemptions, %d migrations\n",
		rep.Energy, rep.OK(), rep.Preemptions, rep.Migrations)
}
