package repro

// Golden-value lock on the paper's Section V.D worked example (n = 6,
// m = 4, p(f) = f³). The paper reports E^F1 = 33.0642 and E^F2 = 31.8362;
// these tests pin the reproduction through the public API at 1e-3 so a
// numeric-kernel change (allocator, interval decomposition, energy
// accounting) cannot silently drift the headline numbers. The tolerance
// is absolute: the published values carry four decimals.

import (
	"math"
	"testing"

	"repro/easched"
	"repro/internal/task"
)

const (
	paperEF1  = 33.0642
	paperEF2  = 31.8362
	goldenTol = 1e-3
)

func TestGoldenSectionVD(t *testing.T) {
	ts := task.SectionVDExample()
	pm := easched.NewModel(3, 0)
	even, der, err := easched.ScheduleBoth(ts, 4, pm)
	if err != nil {
		t.Fatal(err)
	}
	if got := even.FinalEnergy; math.Abs(got-paperEF1) > goldenTol {
		t.Errorf("E^F1 = %.6f, paper Section V.D reports %.4f (tol %g)", got, paperEF1, goldenTol)
	}
	if got := der.FinalEnergy; math.Abs(got-paperEF2) > goldenTol {
		t.Errorf("E^F2 = %.6f, paper Section V.D reports %.4f (tol %g)", got, paperEF2, goldenTol)
	}
	// The paper's qualitative claim: DER allocation strictly beats Even on
	// this instance.
	if der.FinalEnergy >= even.FinalEnergy {
		t.Errorf("E^F2 = %.6f should be strictly below E^F1 = %.6f", der.FinalEnergy, even.FinalEnergy)
	}
}

func TestGoldenSectionVDSchedulesValidate(t *testing.T) {
	ts := task.SectionVDExample()
	pm := easched.NewModel(3, 0)
	even, der, err := easched.ScheduleBoth(ts, 4, pm)
	if err != nil {
		t.Fatal(err)
	}
	for name, plan := range map[string]*easched.Plan{"even": even, "der": der} {
		if errs := plan.Final.Validate(1e-6, true); len(errs) > 0 {
			t.Errorf("%s golden schedule invalid: %v", name, errs[0])
		}
		if got := plan.Final.Energy(pm); math.Abs(got-plan.FinalEnergy) > 1e-6*plan.FinalEnergy {
			t.Errorf("%s realized energy %.6f != closed form %.6f", name, got, plan.FinalEnergy)
		}
	}
}
