// Package repro's root benchmark harness: one benchmark per table and
// figure of the paper, each driving the same experiment code path as
// cmd/energysim but with a reduced replication count so the suite
// completes in minutes. Reported ns/op is the cost of regenerating the
// entire artifact at that replication level; run cmd/energysim -reps 100
// for paper-fidelity outputs.
package repro

import (
	"context"
	"math/rand"
	"testing"

	"repro/easched"
	"repro/internal/experiments"
	"repro/internal/opt"
	"repro/internal/task"
)

// benchConfig is the reduced-replication configuration used by the
// per-figure benchmarks.
func benchConfig() experiments.Config {
	return experiments.Config{
		Replications: 2,
		Seed:         20140901,
		Workers:      0,
		Opt:          opt.Options{MaxIterations: 800, RelGap: 1e-4},
	}
}

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, cfg)
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(res.Points) == 0 {
			b.Fatalf("%s produced no points", id)
		}
	}
}

// BenchmarkFig1YDS regenerates the introductory YDS example (Fig. 1 /
// Fig. 2a).
func BenchmarkFig1YDS(b *testing.B) { benchExperiment(b, "fig1") }

// BenchmarkFig2Optimal regenerates the motivational example's optimal
// schedule (Fig. 2b, Section II KKT).
func BenchmarkFig2Optimal(b *testing.B) { benchExperiment(b, "fig2b") }

// BenchmarkFig3Truncation regenerates the static-power truncation example
// (Fig. 3).
func BenchmarkFig3Truncation(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig45Example regenerates the Section V.D worked example
// (Fig. 4/5).
func BenchmarkFig45Example(b *testing.B) { benchExperiment(b, "fig45") }

// BenchmarkFig6StaticPower regenerates Fig. 6 (NEC vs static power).
func BenchmarkFig6StaticPower(b *testing.B) { benchExperiment(b, "fig6") }

// BenchmarkFig7Alpha regenerates Fig. 7 (NEC vs dynamic exponent).
func BenchmarkFig7Alpha(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkTable2Grid regenerates Table II (NEC of F1/F2 over the
// (α, p0) grid).
func BenchmarkTable2Grid(b *testing.B) { benchExperiment(b, "tab2") }

// BenchmarkFig8Cores regenerates Fig. 8 (NEC vs number of cores).
func BenchmarkFig8Cores(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9Intensity regenerates Fig. 9 (NEC vs intensity range).
func BenchmarkFig9Intensity(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10Tasks regenerates Fig. 10 (NEC vs number of tasks).
func BenchmarkFig10Tasks(b *testing.B) { benchExperiment(b, "fig10") }

// BenchmarkTable3Fit regenerates the Table III XScale power-model fit.
func BenchmarkTable3Fit(b *testing.B) { benchExperiment(b, "tab3") }

// BenchmarkFig11XScale regenerates Fig. 11 (practical XScale scheduling
// with quantization and deadline-miss rates).
func BenchmarkFig11XScale(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkFig11Stress regenerates the stressed deadline-miss sweep.
func BenchmarkFig11Stress(b *testing.B) { benchExperiment(b, "fig11-stress") }

// BenchmarkCoreCountSearch regenerates the Section VI.D core-count
// selection ablation.
func BenchmarkCoreCountSearch(b *testing.B) { benchExperiment(b, "ablation-capsearch") }

// BenchmarkAblationOrder regenerates the Algorithm 2 processing-order
// ablation.
func BenchmarkAblationOrder(b *testing.B) { benchExperiment(b, "ablation-order") }

// BenchmarkAblationRefine regenerates the final-refinement ablation.
func BenchmarkAblationRefine(b *testing.B) { benchExperiment(b, "ablation-refine") }

// BenchmarkAblationQuantize regenerates the quantization-policy ablation.
func BenchmarkAblationQuantize(b *testing.B) { benchExperiment(b, "ablation-quantize") }

// BenchmarkAblationSplit regenerates the two-level splitting ablation.
func BenchmarkAblationSplit(b *testing.B) { benchExperiment(b, "ablation-split") }

// BenchmarkBaselinePartition regenerates the migratory-vs-partitioned
// baseline comparison.
func BenchmarkBaselinePartition(b *testing.B) { benchExperiment(b, "baseline-partition") }

// BenchmarkBaselineOnline regenerates the offline-vs-online comparison.
func BenchmarkBaselineOnline(b *testing.B) { benchExperiment(b, "baseline-online") }

// BenchmarkBaselineGovernor regenerates the governor comparison.
func BenchmarkBaselineGovernor(b *testing.B) { benchExperiment(b, "baseline-governor") }

// BenchmarkRobustness regenerates the workload-model robustness check.
func BenchmarkRobustness(b *testing.B) { benchExperiment(b, "robustness") }

// BenchmarkAblationBound regenerates the analytical-bound tightness check.
func BenchmarkAblationBound(b *testing.B) { benchExperiment(b, "ablation-bound") }

// BenchmarkExtensionCapped regenerates the cap-aware scheduler comparison.
func BenchmarkExtensionCapped(b *testing.B) { benchExperiment(b, "extension-capped") }

// BenchmarkExtensionHetero regenerates the leakage-aware assignment
// comparison.
func BenchmarkExtensionHetero(b *testing.B) { benchExperiment(b, "extension-hetero") }

// BenchmarkSolveDER measures the unified Solve front door on the
// benchmark matrix's acceptance instance (DER, n=100, m=16); the same
// case appears in BENCH_pr4.json via cmd/schedbench.
func BenchmarkSolveDER(b *testing.B) {
	rng := rand.New(rand.NewSource(20140901))
	ts, err := task.Generate(rng, task.PaperDefaults(100))
	if err != nil {
		b.Fatal(err)
	}
	spec := easched.Spec{Tasks: ts, Cores: 16, Model: easched.NewModel(3, 0.05)}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := easched.Solve(ctx, spec); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolveBatch measures SolveBatch over 16 distinct n=20
// instances; one op is the whole batch across the worker pool.
func BenchmarkSolveBatch(b *testing.B) {
	rng := rand.New(rand.NewSource(20140901))
	pm := easched.NewModel(3, 0.05)
	specs := make([]easched.Spec, 16)
	for i := range specs {
		ts, err := task.Generate(rng, task.PaperDefaults(20))
		if err != nil {
			b.Fatal(err)
		}
		specs[i] = easched.Spec{Tasks: ts, Cores: 4, Model: pm}
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, r := range easched.SolveBatch(ctx, specs, 0) {
			if r.Err != nil {
				b.Fatal(r.Err)
			}
		}
	}
}
