package repro

// Invariance property tests across the whole pipeline, driven by the
// metamorphic relation library (internal/metamorphic). Each relation
// pairs an instance transformation with a provable predicate — time-shift
// invariance, the p0 = 0 time/work scaling laws, scale covariance,
// optimum monotonicity — and the engine applies them to every registered
// scheduler plus the convex optimum. The transformations and their
// mathematical justifications live in one place
// (internal/metamorphic/relations.go); this file only selects instances
// and relations, so a new relation is automatically exercised here and in
// cmd/conform without duplicated generator code.
//
// Every subtest owns its rng, seeded from the case index, so instances do
// not depend on sibling execution order and the subtests can run in
// parallel.

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/metamorphic"
	"repro/internal/opt"
	"repro/internal/power"
	"repro/internal/task"

	// Schedulers self-register with the cross-check registry on import.
	_ "repro/internal/core"
	_ "repro/internal/fallback"
	_ "repro/internal/online"
	_ "repro/internal/partition"
	_ "repro/internal/yds"
)

// invOpts keeps per-test solves quick; the wider duality gap is folded
// into every optimum-level predicate, so looseness stays sound.
func invOpts() metamorphic.Options {
	return metamorphic.Options{
		Solver: opt.Options{MaxIterations: 1200, RelGap: 1e-5},
		RelTol: 1e-6,
	}
}

func mustRelation(t *testing.T, name string) metamorphic.Relation {
	t.Helper()
	rel, ok := metamorphic.RelationByName(name)
	if !ok {
		t.Fatalf("relation %q not in the library", name)
	}
	return rel
}

func checkRelation(t *testing.T, rel metamorphic.Relation, inst metamorphic.Instance) {
	t.Helper()
	vs, err := metamorphic.CheckInstance(context.Background(), inst, []metamorphic.Relation{rel}, invOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vs {
		t.Errorf("violation: %v", v)
	}
}

func TestTranslationInvariance(t *testing.T) {
	// Shifting every release and deadline by Δ changes nothing: every
	// scheduler in the registry and the convex optimum must report
	// identical energy on the shifted instance.
	rel := mustRelation(t, "time-shift")
	pm := power.Unit(3, 0.1)
	for trial := 0; trial < 5; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(314 + int64(trial)))
			ts := task.MustGenerate(rng, task.PaperDefaults(12))
			checkRelation(t, rel, metamorphic.Instance{Tasks: ts, Cores: 4, Model: pm})
		})
	}
}

func TestScaleCovariance(t *testing.T) {
	// Scaling time and work together by k leaves all frequencies unchanged
	// and scales E by exactly k — for any p0, because both dynamic and
	// static energy are rates integrated over a k-times-longer horizon.
	rel := mustRelation(t, "time-work-scale")
	for trial, p0 := range []float64{0, 0.2} {
		trial, p0 := trial, p0
		t.Run(fmt.Sprintf("p0=%g", p0), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(628 + int64(trial)))
			ts := task.MustGenerate(rng, task.PaperDefaults(10))
			checkRelation(t, rel, metamorphic.Instance{Tasks: ts, Cores: 4, Model: power.Unit(3, p0)})
		})
	}
}

func TestTimeScalingLawNoStaticPower(t *testing.T) {
	// With p0 = 0 and windows stretched by c (same work), every schedule's
	// frequencies divide by c, so energy scales by c^(1−α).
	rel := mustRelation(t, "time-stretch-zero-leak")
	for i, alpha := range []float64{2, 3} {
		i, alpha := i, alpha
		t.Run(fmt.Sprintf("alpha%g", alpha), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(271 + int64(i)))
			ts := task.MustGenerate(rng, task.PaperDefaults(10))
			checkRelation(t, rel, metamorphic.Instance{Tasks: ts, Cores: 4, Model: power.Unit(alpha, 0)})
		})
	}
}

func TestWorkScalingLawNoStaticPower(t *testing.T) {
	// With p0 = 0 and all work multiplied by c (same windows), all
	// frequencies multiply by c and energy scales by c^α.
	rel := mustRelation(t, "work-scale-zero-leak")
	t.Parallel()
	rng := rand.New(rand.NewSource(161))
	ts := task.MustGenerate(rng, task.PaperDefaults(10))
	checkRelation(t, rel, metamorphic.Instance{Tasks: ts, Cores: 4, Model: power.Unit(3, 0)})
}

func TestOptimumMonotonicity(t *testing.T) {
	// The convex optimum is monotone in the instance: more cores, a looser
	// deadline, less work, or a dropped task can only help; more static
	// power can only hurt.
	pm := power.Unit(2.5, 0.15)
	for _, name := range []string{"add-core", "relax-deadline", "drop-task", "shrink-work", "raise-leakage"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			rel := mustRelation(t, name)
			rng := rand.New(rand.NewSource(42))
			ts := task.MustGenerate(rng, task.PaperDefaults(8))
			checkRelation(t, rel, metamorphic.Instance{Tasks: ts, Cores: 3, Model: pm})
		})
	}
}

func TestInvarianceAcrossRegimes(t *testing.T) {
	// One instance from each generator regime through the full relation
	// library — the same matrix cmd/conform soaks nightly, at spot-check
	// scale so `go test ./...` exercises every regime × relation pair.
	if testing.Short() {
		t.Skip("matrix spot check in -short mode")
	}
	for i, regime := range task.Regimes() {
		i, regime := i, regime
		t.Run(string(regime), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(1000 + int64(i)))
			ts, err := task.GenerateRegime(rng, regime, 5)
			if err != nil {
				t.Fatal(err)
			}
			inst := metamorphic.Instance{Tasks: ts, Cores: 1 + i%4, Model: power.Unit(3, float64(i%2)*0.1)}
			vs, err := metamorphic.CheckInstance(context.Background(), inst, metamorphic.Relations(), invOpts())
			if err != nil {
				t.Fatal(err)
			}
			for _, v := range vs {
				t.Errorf("violation: %v", v)
			}
		})
	}
}
