package repro

// Invariance property tests across the whole pipeline. Energy-aware
// scheduling is translation-invariant (shifting every release and
// deadline by Δ changes nothing) and respects exact scaling laws under
// p0 = 0 (stretching time by c divides all frequencies by c and energies
// by c^(α−1)). Each scheduler in the repository must obey both — a
// violation would expose hidden absolute-time or absolute-scale
// dependencies.
//
// Every subtest owns its rng, seeded from the case index, so instances
// do not depend on sibling execution order and the subtests can run in
// parallel.

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"repro/internal/alloc"
	"repro/internal/core"
	"repro/internal/interval"
	"repro/internal/online"
	"repro/internal/opt"
	"repro/internal/partition"
	"repro/internal/power"
	"repro/internal/task"
	"repro/internal/yds"
)

func shifted(ts task.Set, delta float64) task.Set {
	out := ts.Clone()
	for i := range out {
		out[i].Release += delta
		out[i].Deadline += delta
	}
	return out
}

func timeScaled(ts task.Set, c float64) task.Set {
	out := ts.Clone()
	for i := range out {
		out[i].Release *= c
		out[i].Deadline *= c
	}
	return out
}

func TestTranslationInvariance(t *testing.T) {
	pm := power.Unit(3, 0.1)
	for trial := 0; trial < 5; trial++ {
		trial := trial
		t.Run(fmt.Sprintf("trial%d", trial), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(314 + int64(trial)))
			ts := task.MustGenerate(rng, task.PaperDefaults(12))
			moved := shifted(ts, 1000)

			// The paper's pipelines.
			for _, method := range []alloc.Method{alloc.Even, alloc.DER} {
				a := core.MustSchedule(ts, 4, pm, method, core.Options{Tolerance: 1e-9})
				b := core.MustSchedule(moved, 4, pm, method, core.Options{Tolerance: 1e-9})
				if math.Abs(a.FinalEnergy-b.FinalEnergy) > 1e-9*a.FinalEnergy {
					t.Errorf("%v final energy not translation invariant: %.10f vs %.10f",
						method, a.FinalEnergy, b.FinalEnergy)
				}
				if math.Abs(a.IntermediateEnergy-b.IntermediateEnergy) > 1e-9*a.IntermediateEnergy {
					t.Errorf("%v intermediate energy not translation invariant", method)
				}
			}

			// The convex solver.
			da := interval.MustDecompose(ts, 1e-9)
			db := interval.MustDecompose(moved, 1e-9)
			sa := opt.MustSolve(da, 4, pm, opt.Options{MaxIterations: 2000, RelGap: 1e-6})
			sb := opt.MustSolve(db, 4, pm, opt.Options{MaxIterations: 2000, RelGap: 1e-6})
			if math.Abs(sa.Energy-sb.Energy) > 1e-6*sa.Energy {
				t.Errorf("optimal energy not translation invariant: %.8f vs %.8f", sa.Energy, sb.Energy)
			}

			// YDS and the partitioned baseline.
			ya, err := yds.Energy(ts, pm)
			if err != nil {
				t.Fatal(err)
			}
			yb, err := yds.Energy(moved, pm)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(ya-yb) > 1e-9*ya {
				t.Errorf("YDS energy not translation invariant")
			}
			_, pa, err := partition.Schedule(ts, 3, pm)
			if err != nil {
				t.Fatal(err)
			}
			_, pb, err := partition.Schedule(moved, 3, pm)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(pa-pb) > 1e-9*pa {
				t.Errorf("partitioned energy not translation invariant")
			}

			// The online scheduler.
			oa, err := online.ReplanDER(ts, 4, pm)
			if err != nil {
				t.Fatal(err)
			}
			ob, err := online.ReplanDER(moved, 4, pm)
			if err != nil {
				t.Fatal(err)
			}
			if math.Abs(oa.Energy-ob.Energy) > 1e-9*oa.Energy {
				t.Errorf("online energy not translation invariant")
			}
		})
	}
}

func TestTimeScalingLawNoStaticPower(t *testing.T) {
	// With p0 = 0 and windows stretched by c (same work), every schedule's
	// frequencies divide by c, so energy scales by c^(1−α):
	// E' = Σ C·(f/c)^(α−1) = E / c^(α−1).
	for i, alpha := range []float64{2, 3} {
		i, alpha := i, alpha
		t.Run(fmt.Sprintf("alpha%g", alpha), func(t *testing.T) {
			t.Parallel()
			rng := rand.New(rand.NewSource(271 + int64(i)))
			pm := power.Unit(alpha, 0)
			ts := task.MustGenerate(rng, task.PaperDefaults(10))
			const c = 2.5
			stretched := timeScaled(ts, c)
			want := math.Pow(c, alpha-1)

			a := core.MustSchedule(ts, 4, pm, alloc.DER, core.Options{Tolerance: 1e-9})
			b := core.MustSchedule(stretched, 4, pm, alloc.DER, core.Options{Tolerance: 1e-9})
			if ratio := a.FinalEnergy / b.FinalEnergy; math.Abs(ratio-want) > 1e-6*want {
				t.Errorf("α=%g: F2 scaling ratio %.8f, want %.8f", alpha, ratio, want)
			}

			ya, err := yds.Energy(ts, pm)
			if err != nil {
				t.Fatal(err)
			}
			yb, err := yds.Energy(stretched, pm)
			if err != nil {
				t.Fatal(err)
			}
			if ratio := ya / yb; math.Abs(ratio-want) > 1e-6*want {
				t.Errorf("α=%g: YDS scaling ratio %.8f, want %.8f", alpha, ratio, want)
			}

			da := interval.MustDecompose(ts, 1e-9)
			db := interval.MustDecompose(stretched, 1e-9)
			sa := opt.MustSolve(da, 4, pm, opt.Options{MaxIterations: 4000, RelGap: 1e-7})
			sb := opt.MustSolve(db, 4, pm, opt.Options{MaxIterations: 4000, RelGap: 1e-7})
			if ratio := sa.Energy / sb.Energy; math.Abs(ratio-want) > 1e-4*want {
				t.Errorf("α=%g: optimal scaling ratio %.8f, want %.8f", alpha, ratio, want)
			}
		})
	}
}

func TestWorkScalingLawNoStaticPower(t *testing.T) {
	// With p0 = 0 and all work multiplied by c (same windows), all
	// frequencies multiply by c and energy scales by c^α.
	t.Parallel()
	rng := rand.New(rand.NewSource(161))
	pm := power.Unit(3, 0)
	ts := task.MustGenerate(rng, task.PaperDefaults(10))
	const c = 1.7
	scaled := ts.Clone()
	for i := range scaled {
		scaled[i].Work *= c
	}
	want := math.Pow(c, 3)
	a := core.MustSchedule(ts, 4, pm, alloc.DER, core.Options{Tolerance: 1e-9})
	b := core.MustSchedule(scaled, 4, pm, alloc.DER, core.Options{Tolerance: 1e-9})
	if ratio := b.FinalEnergy / a.FinalEnergy; math.Abs(ratio-want) > 1e-6*want {
		t.Errorf("work scaling ratio %.8f, want %.8f", ratio, want)
	}
}
